//! Shared scaffolding for building complete models.

use partir_autodiff::{adam_update, backward, AdamConfig};
use partir_ir::{DType, Func, FuncBuilder, IrError, Literal, TensorType, ValueId};

/// How a function input is initialised by [`synthetic_inputs`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Init {
    /// All zeros (optimizer moments).
    Zeros,
    /// All ones (norm scales).
    Ones,
    /// Uniform floats in `(-scale, scale)` (weights, activations).
    Uniform(f32),
    /// Uniform ints in `[0, max)` (token ids, graph indices).
    IntUniform(i32),
}

/// A fully built model: the function plus input metadata.
#[derive(Debug, Clone)]
pub struct BuiltModel {
    /// The program (training step or serving loop).
    pub func: Func,
    /// Per-input initialisation, aligned with `func.params()`.
    pub inits: Vec<Init>,
    /// Number of *parameter* tensors (the paper's per-model counts).
    pub num_param_tensors: usize,
    /// Human-readable model name.
    pub name: String,
}

impl BuiltModel {
    /// Total parameter element count.
    pub fn num_param_elements(&self) -> usize {
        self.func
            .params()
            .iter()
            .filter(|&&p| {
                self.func
                    .value(p)
                    .name
                    .as_deref()
                    .is_some_and(|n| n.starts_with("params."))
            })
            .map(|&p| self.func.value_type(p).shape.num_elements())
            .sum()
    }
}

/// Deterministic synthetic inputs for a built model.
pub fn synthetic_inputs(model: &BuiltModel, seed: u64) -> Vec<Literal> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15) | 1;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as f64 / (1u64 << 31) as f64 // [0, 1)
    };
    model
        .func
        .params()
        .iter()
        .zip(&model.inits)
        .map(|(&p, init)| {
            let ty = model.func.value_type(p);
            let n = ty.shape.num_elements();
            match init {
                Init::Zeros => Literal::zeros(ty),
                Init::Ones => Literal::ones(ty),
                Init::Uniform(scale) => {
                    let data: Vec<f32> = (0..n)
                        .map(|_| ((next() * 2.0 - 1.0) as f32) * scale)
                        .collect();
                    Literal::from_f32(data, ty.shape.clone()).expect("sized data")
                }
                Init::IntUniform(max) => {
                    let data: Vec<i32> = (0..n).map(|_| (next() * *max as f64) as i32).collect();
                    Literal::from_i32(data, ty.shape.clone()).expect("sized data")
                }
            }
        })
        .collect()
}

/// Declares one model parameter together with its Adam moments; returns
/// `(param, m, v)`.
pub(crate) fn param_with_opt(
    b: &mut FuncBuilder,
    inits: &mut Vec<Init>,
    name: &str,
    ty: TensorType,
    init: Init,
) -> (ValueId, ValueId, ValueId) {
    let p = b.param(format!("params.{name}"), ty.clone());
    inits.push(init);
    let m = b.param(format!("opt.m.{name}"), ty.clone());
    inits.push(Init::Zeros);
    let v = b.param(format!("opt.v.{name}"), ty);
    inits.push(Init::Zeros);
    (p, m, v)
}

/// Completes a training step: appends the backward pass for `loss` and
/// one Adam update per parameter, then builds the function with results
/// `[loss, new_params…, new_m…, new_v…]`.
pub(crate) fn finish_train_step(
    mut b: FuncBuilder,
    loss: ValueId,
    params: &[(ValueId, ValueId, ValueId)],
) -> Result<Func, IrError> {
    let wrt: Vec<ValueId> = params.iter().map(|&(p, _, _)| p).collect();
    let grads = backward(&mut b, loss, &wrt)?;
    let cfg = AdamConfig::default();
    let mut new_params = Vec::with_capacity(params.len());
    let mut new_ms = Vec::with_capacity(params.len());
    let mut new_vs = Vec::with_capacity(params.len());
    for (&(p, m, v), &g) in params.iter().zip(&grads) {
        let (np, nm, nv) = adam_update(&mut b, p, g, m, v, &cfg)?;
        new_params.push(np);
        new_ms.push(nm);
        new_vs.push(nv);
    }
    let mut results = vec![loss];
    results.extend(new_params);
    results.extend(new_ms);
    results.extend(new_vs);
    // Note: we deliberately do *not* CSE here. Merging structurally
    // identical values across layers (shared scalar broadcasts, masks)
    // forces them to share one sharding, which changes the collective
    // pattern the paper's per-layer counting laws assume. CSE remains
    // available as `partir_ir::passes::cse` for consumers that prefer
    // smaller graphs over count fidelity.
    b.build(results)
}

/// Scalar mean of an arbitrary-rank f32 value.
pub(crate) fn mean_all(b: &mut FuncBuilder, x: ValueId) -> Result<ValueId, IrError> {
    let ty = b.ty(x).clone();
    let n = ty.shape.num_elements() as f32;
    let dims: Vec<usize> = (0..ty.rank()).collect();
    let total = b.reduce_sum(x, dims)?;
    let denom = b.constant(Literal::scalar_f32(n))?;
    b.div(total, denom)
}

/// Declares an i32 data input.
pub(crate) fn int_input(
    b: &mut FuncBuilder,
    inits: &mut Vec<Init>,
    name: &str,
    shape: Vec<usize>,
    max: i32,
) -> ValueId {
    let v = b.param(name, TensorType::new(shape, DType::I32));
    inits.push(Init::IntUniform(max));
    v
}

/// Declares an f32 data input.
pub(crate) fn f32_input(
    b: &mut FuncBuilder,
    inits: &mut Vec<Init>,
    name: &str,
    shape: Vec<usize>,
) -> ValueId {
    let v = b.param(name, TensorType::f32(shape));
    inits.push(Init::Uniform(0.5));
    v
}
