//! Small models for quickstarts: the paper's two-matmul chain (Listing 1)
//! and an MLP regression training step.

use partir_ir::{Func, FuncBuilder, TensorType};

use crate::nn;
use crate::train::{f32_input, finish_train_step, param_with_opt, BuiltModel, Init};

/// The matmul chain of Listing 1: `f(x, w1, w2) = (x·w1)·w2`.
pub fn matmul_chain(batch: usize, d_in: usize, d_hidden: usize, d_out: usize) -> Func {
    let mut b = FuncBuilder::new("main");
    let x = b.param("x", TensorType::f32([batch, d_in]));
    let w1 = b.param("w1", TensorType::f32([d_in, d_hidden]));
    let w2 = b.param("w2", TensorType::f32([d_hidden, d_out]));
    let h = b.matmul(x, w1).expect("shapes line up");
    let y = b.matmul(h, w2).expect("shapes line up");
    b.build([y]).expect("well formed")
}

/// MLP hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlpConfig {
    /// Batch size.
    pub batch: usize,
    /// Input features.
    pub d_in: usize,
    /// Hidden width.
    pub d_hidden: usize,
    /// Output features.
    pub d_out: usize,
    /// Number of hidden layers.
    pub layers: usize,
}

impl MlpConfig {
    /// A small default.
    pub fn small() -> Self {
        MlpConfig {
            batch: 16,
            d_in: 8,
            d_hidden: 32,
            d_out: 4,
            layers: 3,
        }
    }
}

/// A full MLP regression training step (MSE loss + Adam).
///
/// # Errors
///
/// Fails only on internal IR construction errors.
pub fn build_train_step(cfg: &MlpConfig) -> Result<BuiltModel, partir_ir::IrError> {
    let mut b = FuncBuilder::new("mlp_train");
    let mut inits = Vec::new();
    let mut params = Vec::new();
    let mut weights = Vec::new();
    let mut widths = vec![cfg.d_in];
    widths.extend(std::iter::repeat_n(cfg.d_hidden, cfg.layers));
    widths.push(cfg.d_out);
    for (i, pair) in widths.windows(2).enumerate() {
        let triple = param_with_opt(
            &mut b,
            &mut inits,
            &format!("w{i}"),
            TensorType::f32([pair[0], pair[1]]),
            Init::Uniform(1.0 / (pair[0] as f32).sqrt()),
        );
        weights.push(triple.0);
        params.push(triple);
    }
    let x = f32_input(&mut b, &mut inits, "x", vec![cfg.batch, cfg.d_in]);
    let target = f32_input(&mut b, &mut inits, "target", vec![cfg.batch, cfg.d_out]);
    let pred = nn::mlp_stack(&mut b, x, &weights)?;
    let loss = nn::mse(&mut b, pred, target)?;
    let func = finish_train_step(b, loss, &params)?;
    Ok(BuiltModel {
        func,
        inits,
        num_param_tensors: cfg.layers + 1,
        name: "MLP".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::synthetic_inputs;
    use partir_ir::interp::interpret;

    #[test]
    fn chain_builds() {
        let f = matmul_chain(256, 8, 16, 8);
        partir_ir::verify::verify_func(&f, None).unwrap();
        assert_eq!(f.params().len(), 3);
    }

    #[test]
    fn mlp_step_runs_and_loss_is_positive() {
        let model = build_train_step(&MlpConfig::small()).unwrap();
        partir_ir::verify::verify_func(&model.func, None).unwrap();
        let inputs = synthetic_inputs(&model, 3);
        let out = interpret(&model.func, &inputs).unwrap();
        assert!(out[0].as_f32().unwrap()[0] > 0.0);
    }
}
