//! The benchmark model zoo (paper §7.1, Appendix A.3).
//!
//! Every model builds a complete IR program with *named* inputs —
//! `params.*` for parameters, `opt.m.*` / `opt.v.*` for Adam state — the
//! handles PartIR tactics address. Training models are full steps:
//! forward pass, loss, reverse-mode backward pass and Adam update, built
//! through `partir-autodiff`; the inference Transformer is an
//! autoregressive serving loop with KV caches.
//!
//! Models:
//!
//! * [`transformer`] — Chinchilla-style decoder Transformer. `t32()` /
//!   `t48()` reproduce the paper's layer/parameter-tensor structure
//!   (9 tensors per block + tied embedding ⇒ 289 parameter tensors for
//!   T32); `tiny()` is small enough to execute in tests.
//! * [`itransformer`] — the inference model (IT32) with multi-query
//!   attention, KV caches and a `for` serving loop.
//! * [`unet`] — the diffusion reverse-process U-Net.
//! * [`gns`] — the Graph Network Simulator with gather/scatter message
//!   passing (edge sharding).
//! * [`mlp`] — small models for examples and quickstarts.
//!
//! [`schedules`] builds the paper's tactic sequences (BP, MP, Z2, Z3,
//! EMB, MQ, ES, Auto*) for each model, mirroring Appendix A.6.

#![forbid(unsafe_code)]

pub mod gns;
pub mod itransformer;
pub mod mlp;
pub mod nn;
pub mod schedules;
pub mod train;
pub mod transformer;
pub mod unet;

pub use train::{synthetic_inputs, BuiltModel, Init};
