//! Diffusion-reverse-process U-Net (paper §7.1, Appendix A.3).
//!
//! Matches the paper's structure: a down path of residual convolution
//! blocks (9 at the default depth), a middle of two residual blocks
//! around an attention layer, and an up path of 12 residual blocks with
//! skip connections, where each residual block's pair of convolutions
//! widens to a 4× hidden channel count ("this allows for efficient
//! partitioning along the channel dimensions"). Upsampling is a
//! nearest-neighbour reshape/broadcast; downsampling a stride-2 conv.
//! The training step regresses predicted noise with MSE + Adam.

use partir_ir::{ConvDims, FuncBuilder, IrError, TensorType, ValueId};

use crate::nn;
use crate::train::{f32_input, finish_train_step, param_with_opt, BuiltModel, Init};

/// U-Net hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UNetConfig {
    /// Batch size.
    pub batch: usize,
    /// Input/output image channels.
    pub in_channels: usize,
    /// Base feature channels.
    pub channels: usize,
    /// Resolution levels (downsamples = levels − 1).
    pub levels: usize,
    /// Residual blocks per level on the down path.
    pub blocks_down: usize,
    /// Residual blocks per level on the up path.
    pub blocks_up: usize,
    /// Input spatial size (square).
    pub image: usize,
    /// Attention heads in the middle block.
    pub heads: usize,
}

impl UNetConfig {
    /// The paper's block structure (3 levels × 3 = 9 down, 3 × 4 = 12 up,
    /// two middle residual blocks around one attention layer) at
    /// CPU-simulable width.
    pub fn paper() -> Self {
        UNetConfig {
            batch: 8,
            in_channels: 4,
            channels: 16,
            levels: 3,
            blocks_down: 3,
            blocks_up: 4,
            image: 16,
            heads: 4,
        }
    }

    /// A tiny configuration for interpreter tests.
    pub fn tiny() -> Self {
        UNetConfig {
            batch: 2,
            in_channels: 2,
            channels: 4,
            levels: 2,
            blocks_down: 1,
            blocks_up: 1,
            image: 8,
            heads: 2,
        }
    }
}

type Triple = (ValueId, ValueId, ValueId);

struct ResBlock {
    norm1: Triple,
    conv1: Triple, // [4C, C_in, 3, 3]
    norm2: Triple,
    conv2: Triple,        // [C_out, 4C, 3, 3]
    skip: Option<Triple>, // 1x1 conv when C_in != C_out
}

fn declare_res_block(
    b: &mut FuncBuilder,
    inits: &mut Vec<Init>,
    name: &str,
    c_in: usize,
    c_out: usize,
) -> ResBlock {
    let hidden = 4 * c_out;
    let scale = 0.3 / (c_in as f32).sqrt();
    ResBlock {
        norm1: param_with_opt(
            b,
            inits,
            &format!("{name}.norm1"),
            TensorType::f32([c_in]),
            Init::Ones,
        ),
        conv1: param_with_opt(
            b,
            inits,
            &format!("{name}.conv1_w"),
            TensorType::f32([hidden, c_in, 3, 3]),
            Init::Uniform(scale),
        ),
        norm2: param_with_opt(
            b,
            inits,
            &format!("{name}.norm2"),
            TensorType::f32([hidden]),
            Init::Ones,
        ),
        conv2: param_with_opt(
            b,
            inits,
            &format!("{name}.conv2_w"),
            TensorType::f32([c_out, hidden, 3, 3]),
            Init::Uniform(0.3 / (hidden as f32).sqrt()),
        ),
        skip: (c_in != c_out).then(|| {
            param_with_opt(
                b,
                inits,
                &format!("{name}.skip_w"),
                TensorType::f32([c_out, c_in, 1, 1]),
                Init::Uniform(scale),
            )
        }),
    }
}

/// Channel-wise scale "norm" for `[N, C, H, W]`.
fn channel_scale(b: &mut FuncBuilder, x: ValueId, scale: ValueId) -> Result<ValueId, IrError> {
    let shape = b.ty(x).shape.clone();
    let s = b.broadcast_in_dim(scale, shape, vec![1])?;
    b.mul(x, s)
}

fn res_block_forward(b: &mut FuncBuilder, blk: &ResBlock, x: ValueId) -> Result<ValueId, IrError> {
    let same = ConvDims {
        strides: (1, 1),
        padding: (1, 1),
    };
    let h = channel_scale(b, x, blk.norm1.0)?;
    let h = b.tanh(h)?;
    let h = b.convolution(h, blk.conv1.0, same)?;
    let h = channel_scale(b, h, blk.norm2.0)?;
    let h = b.tanh(h)?;
    let h = b.convolution(h, blk.conv2.0, same)?;
    let shortcut = match &blk.skip {
        Some(skip) => b.convolution(x, skip.0, ConvDims::default())?,
        None => x,
    };
    b.add(shortcut, h)
}

struct AttnBlock {
    norm: Triple,
    wq: Triple,
    wk: Triple,
    wv: Triple,
    wo: Triple,
}

fn declare_attn(b: &mut FuncBuilder, inits: &mut Vec<Init>, name: &str, c: usize) -> AttnBlock {
    let scale = 1.0 / (c as f32).sqrt();
    let mat = |b: &mut FuncBuilder, inits: &mut Vec<Init>, n: String| {
        param_with_opt(b, inits, &n, TensorType::f32([c, c]), Init::Uniform(scale))
    };
    AttnBlock {
        norm: param_with_opt(
            b,
            inits,
            &format!("{name}.attn_norm"),
            TensorType::f32([c]),
            Init::Ones,
        ),
        wq: mat(b, inits, format!("{name}.attn_wq")),
        wk: mat(b, inits, format!("{name}.attn_wk")),
        wv: mat(b, inits, format!("{name}.attn_wv")),
        wo: mat(b, inits, format!("{name}.attn_wo")),
    }
}

fn attn_forward(
    b: &mut FuncBuilder,
    cfg: &UNetConfig,
    blk: &AttnBlock,
    x: ValueId,
) -> Result<ValueId, IrError> {
    let dims = b.ty(x).shape.dims().to_vec();
    let (n, c, h, w) = (dims[0], dims[1], dims[2], dims[3]);
    let hw = h * w;
    let heads = cfg.heads;
    let dh = c / heads;
    let normed = channel_scale(b, x, blk.norm.0)?;
    let flat = b.reshape(normed, [n, c, hw])?;
    let tokens = b.transpose(flat, vec![0, 2, 1])?; // [N, HW, C]
    let project = |b: &mut FuncBuilder, w_: ValueId| -> Result<ValueId, IrError> {
        let p = nn::linear(b, tokens, w_)?; // [N, HW, C]
        let heads_split = b.reshape(p, [n, hw, heads, dh])?;
        b.transpose(heads_split, vec![0, 2, 1, 3]) // [N, H, HW, dh]
    };
    let q = project(b, blk.wq.0)?;
    let k = project(b, blk.wk.0)?;
    let v = project(b, blk.wv.0)?;
    let kt = b.transpose(k, vec![0, 1, 3, 2])?;
    let scores = b.dot(
        q,
        kt,
        partir_ir::DotDims {
            lhs_batch: vec![0, 1],
            rhs_batch: vec![0, 1],
            lhs_contract: vec![3],
            rhs_contract: vec![2],
        },
    )?;
    let scaled = b.binary_scalar(partir_ir::BinaryOp::Mul, scores, 1.0 / (dh as f32).sqrt())?;
    let probs = nn::softmax(b, scaled)?;
    let ctx = b.dot(
        probs,
        v,
        partir_ir::DotDims {
            lhs_batch: vec![0, 1],
            rhs_batch: vec![0, 1],
            lhs_contract: vec![3],
            rhs_contract: vec![2],
        },
    )?; // [N, H, HW, dh]
    let merged = b.transpose(ctx, vec![0, 2, 1, 3])?;
    let merged = b.reshape(merged, [n, hw, c])?;
    let out = nn::linear(b, merged, blk.wo.0)?; // [N, HW, C]
    let back = b.transpose(out, vec![0, 2, 1])?;
    let back = b.reshape(back, [n, c, h, w])?;
    b.add(x, back)
}

/// Builds the U-Net noise-prediction training step.
///
/// # Errors
///
/// Fails only on internal IR construction errors.
pub fn build_train_step(cfg: &UNetConfig) -> Result<BuiltModel, IrError> {
    let mut b = FuncBuilder::new("unet_train");
    let mut inits = Vec::new();
    let mut params: Vec<Triple> = Vec::new();
    let same = ConvDims {
        strides: (1, 1),
        padding: (1, 1),
    };
    let down2 = ConvDims {
        strides: (2, 2),
        padding: (1, 1),
    };

    // Stem.
    let conv_in = param_with_opt(
        &mut b,
        &mut inits,
        "conv_in_w",
        TensorType::f32([cfg.channels, cfg.in_channels, 3, 3]),
        Init::Uniform(0.3),
    );
    params.push(conv_in);

    // Declare all blocks first so parameters precede data inputs.
    let push_res = |params: &mut Vec<Triple>, blk: &ResBlock| {
        for t in [blk.norm1, blk.conv1, blk.norm2, blk.conv2] {
            params.push(t);
        }
        if let Some(s) = blk.skip {
            params.push(s);
        }
    };
    let mut down_blocks = Vec::new();
    let mut down_samplers = Vec::new();
    let mut ch = cfg.channels;
    for level in 0..cfg.levels {
        let mut level_blocks = Vec::new();
        for i in 0..cfg.blocks_down {
            let blk = declare_res_block(&mut b, &mut inits, &format!("down{level}.res{i}"), ch, ch);
            push_res(&mut params, &blk);
            level_blocks.push(blk);
        }
        down_blocks.push(level_blocks);
        if level + 1 < cfg.levels {
            let next = ch * 2;
            let w = param_with_opt(
                &mut b,
                &mut inits,
                &format!("down{level}.downsample_w"),
                TensorType::f32([next, ch, 3, 3]),
                Init::Uniform(0.2),
            );
            down_samplers.push(w);
            params.push(w);
            ch = next;
        }
    }
    let mid1 = declare_res_block(&mut b, &mut inits, "mid.res0", ch, ch);
    push_res(&mut params, &mid1);
    let attn = declare_attn(&mut b, &mut inits, "mid", ch);
    for t in [attn.norm, attn.wq, attn.wk, attn.wv, attn.wo] {
        params.push(t);
    }
    let mid2 = declare_res_block(&mut b, &mut inits, "mid.res1", ch, ch);
    push_res(&mut params, &mid2);
    let mut up_blocks = Vec::new();
    let mut up_samplers = Vec::new();
    {
        let mut c = ch;
        for level in (0..cfg.levels).rev() {
            let mut level_blocks = Vec::new();
            for i in 0..cfg.blocks_up {
                // The first up block consumes the concatenated skip.
                let c_in = if i == 0 { 2 * c } else { c };
                let blk =
                    declare_res_block(&mut b, &mut inits, &format!("up{level}.res{i}"), c_in, c);
                push_res(&mut params, &blk);
                level_blocks.push(blk);
            }
            up_blocks.push(level_blocks);
            if level > 0 {
                let next = c / 2;
                let w = param_with_opt(
                    &mut b,
                    &mut inits,
                    &format!("up{level}.upconv_w"),
                    TensorType::f32([next, c, 3, 3]),
                    Init::Uniform(0.2),
                );
                up_samplers.push(w);
                params.push(w);
                c = next;
            }
        }
    }
    let conv_out = param_with_opt(
        &mut b,
        &mut inits,
        "conv_out_w",
        TensorType::f32([cfg.in_channels, cfg.channels, 3, 3]),
        Init::Uniform(0.2),
    );
    params.push(conv_out);

    // Data.
    let x_in = f32_input(
        &mut b,
        &mut inits,
        "x",
        vec![cfg.batch, cfg.in_channels, cfg.image, cfg.image],
    );
    let noise = f32_input(
        &mut b,
        &mut inits,
        "noise",
        vec![cfg.batch, cfg.in_channels, cfg.image, cfg.image],
    );

    // Forward.
    let mut h = b.convolution(x_in, conv_in.0, same)?;
    let mut skips = Vec::new();
    for (level, level_blocks) in down_blocks.iter().enumerate() {
        for blk in level_blocks {
            h = res_block_forward(&mut b, blk, h)?;
        }
        skips.push(h);
        if level + 1 < cfg.levels {
            h = b.convolution(h, down_samplers[level].0, down2)?;
        }
    }
    h = res_block_forward(&mut b, &mid1, h)?;
    h = attn_forward(&mut b, cfg, &attn, h)?;
    h = res_block_forward(&mut b, &mid2, h)?;
    for (idx, level_blocks) in up_blocks.iter().enumerate() {
        let level = cfg.levels - 1 - idx;
        let skip = skips[level];
        h = b.concatenate(&[h, skip], 1)?;
        for blk in level_blocks {
            h = res_block_forward(&mut b, blk, h)?;
        }
        if level > 0 {
            h = nn::upsample2x(&mut b, h)?;
            h = b.convolution(h, up_samplers[idx].0, same)?;
        }
    }
    let pred = b.convolution(h, conv_out.0, same)?;
    let loss = nn::mse(&mut b, pred, noise)?;

    let num_param_tensors = params.len();
    let func = finish_train_step(b, loss, &params)?;
    Ok(BuiltModel {
        func,
        inits,
        num_param_tensors,
        name: "UNet".to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::synthetic_inputs;
    use partir_ir::interp::interpret;

    #[test]
    fn paper_config_has_9_down_and_12_up_blocks() {
        let cfg = UNetConfig::paper();
        assert_eq!(cfg.levels * cfg.blocks_down, 9);
        assert_eq!(cfg.levels * cfg.blocks_up, 12);
    }

    #[test]
    fn tiny_unet_builds_and_runs() {
        let model = build_train_step(&UNetConfig::tiny()).unwrap();
        partir_ir::verify::verify_func(&model.func, None).unwrap();
        let inputs = synthetic_inputs(&model, 11);
        let out = interpret(&model.func, &inputs).unwrap();
        let loss = out[0].as_f32().unwrap()[0];
        assert!(loss.is_finite() && loss > 0.0);
    }
}
