//! Chinchilla-style decoder-only Transformer (the paper's T32/T48).
//!
//! Each block has exactly **9 parameter tensors** — `ln1_scale`,
//! `ln1_bias`, `w_qkv`, `w_o`, `ln2_scale`, `ln2_bias`, `w_up`, `w_down`
//! and the extra `ln3_scale` ("additional normalization layer") — plus a
//! single tied embedding, giving the paper's 289 parameter tensors at 32
//! layers. The fused QKV weight uses layout `[d_model, heads, 3, d_head]`
//! so that Megatron-style head sharding propagates through it (the
//! paper's `qkv_einsum … return 1`).
//!
//! `build_train_step` emits the full training step: forward, softmax
//! cross-entropy, reverse-mode backward and Adam — the graphs the paper's
//! schedules (BP/MP/Z2/Z3/EMB) partition.

use partir_ir::{BinaryOp, DotDims, Func, FuncBuilder, IrError, Literal, TensorType, ValueId};

use crate::nn;
use crate::train::{finish_train_step, int_input, param_with_opt, BuiltModel, Init};

/// Transformer hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransformerConfig {
    /// Number of residual blocks.
    pub layers: usize,
    /// Model width.
    pub d_model: usize,
    /// Attention heads (must divide `d_model`).
    pub heads: usize,
    /// MLP hidden width.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Sequence length.
    pub seq: usize,
    /// Batch size.
    pub batch: usize,
}

impl TransformerConfig {
    /// The paper's T32 structure (32 layers, 9 tensors per block) at
    /// CPU-simulable width. Collective counts depend only on this
    /// structure, not on the width.
    pub fn t32() -> Self {
        TransformerConfig {
            layers: 32,
            d_model: 64,
            heads: 8,
            d_ff: 256,
            vocab: 128,
            seq: 16,
            batch: 48,
        }
    }

    /// The paper's T48 structure (48 layers).
    pub fn t48() -> Self {
        TransformerConfig {
            layers: 48,
            d_model: 128,
            heads: 16,
            d_ff: 512,
            vocab: 128,
            seq: 16,
            batch: 64,
        }
    }

    /// The paper's T32 at *full* width (5B-parameter class: d_model 4096,
    /// 32 heads, 32k vocabulary; sequences shortened to 512 to keep the
    /// no-rematerialisation activation footprint sensible). Only for
    /// simulation and partitioning — graphs carry shapes, not data, so
    /// building and lowering are cheap, but never interpret this.
    pub fn t32_full() -> Self {
        TransformerConfig {
            layers: 32,
            d_model: 4096,
            heads: 32,
            d_ff: 16384,
            vocab: 32768,
            seq: 512,
            batch: 48,
        }
    }

    /// The paper's T48 at full width (32B-parameter class).
    pub fn t48_full() -> Self {
        TransformerConfig {
            layers: 48,
            d_model: 8192,
            heads: 64,
            d_ff: 32768,
            vocab: 32768,
            seq: 512,
            batch: 64,
        }
    }

    /// The T48 structure sized for *search* benchmarking: the same
    /// 48-layer / 433-parameter-tensor structure as [`TransformerConfig::t48`],
    /// with batch, sequence and vocabulary grown so candidate
    /// partitionings differ measurably in simulated cost on the
    /// benchmark meshes. Widths stay CPU-cheap to build and lower —
    /// searches cost and simulate this model, they never interpret it.
    pub fn t48_search() -> Self {
        TransformerConfig {
            layers: 48,
            d_model: 128,
            heads: 16,
            d_ff: 512,
            vocab: 256,
            seq: 32,
            batch: 128,
        }
    }

    /// A configuration small enough for the SPMD interpreter in tests.
    pub fn tiny() -> Self {
        TransformerConfig {
            layers: 2,
            d_model: 8,
            heads: 2,
            d_ff: 16,
            vocab: 16,
            seq: 4,
            batch: 8,
        }
    }

    /// Per-head width.
    pub fn d_head(&self) -> usize {
        self.d_model / self.heads
    }

    /// Parameter tensor count: 9 per block plus the tied embedding.
    pub fn num_param_tensors(&self) -> usize {
        9 * self.layers + 1
    }
}

/// Declares the parameters (with Adam moments) of one block; returns the
/// nine `(param, m, v)` triples in declaration order.
struct BlockParams {
    ln1_scale: (ValueId, ValueId, ValueId),
    ln1_bias: (ValueId, ValueId, ValueId),
    w_qkv: (ValueId, ValueId, ValueId),
    w_o: (ValueId, ValueId, ValueId),
    ln2_scale: (ValueId, ValueId, ValueId),
    ln2_bias: (ValueId, ValueId, ValueId),
    w_up: (ValueId, ValueId, ValueId),
    w_down: (ValueId, ValueId, ValueId),
    ln3_scale: (ValueId, ValueId, ValueId),
}

impl BlockParams {
    fn all(&self) -> [(ValueId, ValueId, ValueId); 9] {
        [
            self.ln1_scale,
            self.ln1_bias,
            self.w_qkv,
            self.w_o,
            self.ln2_scale,
            self.ln2_bias,
            self.w_up,
            self.w_down,
            self.ln3_scale,
        ]
    }
}

fn declare_block(
    b: &mut FuncBuilder,
    inits: &mut Vec<Init>,
    cfg: &TransformerConfig,
    layer: usize,
) -> BlockParams {
    let d = cfg.d_model;
    let scale = 1.0 / (d as f32).sqrt();
    let mut p = |name: &str, ty: TensorType, init: Init| {
        param_with_opt(b, inits, &format!("blk{layer}.{name}"), ty, init)
    };
    BlockParams {
        ln1_scale: p("ln1_scale", TensorType::f32([d]), Init::Ones),
        ln1_bias: p("ln1_bias", TensorType::f32([d]), Init::Zeros),
        w_qkv: p(
            "w_qkv",
            TensorType::f32([d, cfg.heads, 3, cfg.d_head()]),
            Init::Uniform(scale),
        ),
        w_o: p("w_o", TensorType::f32([d, d]), Init::Uniform(scale)),
        ln2_scale: p("ln2_scale", TensorType::f32([d]), Init::Ones),
        ln2_bias: p("ln2_bias", TensorType::f32([d]), Init::Zeros),
        w_up: p("w_up", TensorType::f32([d, cfg.d_ff]), Init::Uniform(scale)),
        w_down: p(
            "w_down",
            TensorType::f32([cfg.d_ff, d]),
            Init::Uniform(1.0 / (cfg.d_ff as f32).sqrt()),
        ),
        ln3_scale: p("ln3_scale", TensorType::f32([d]), Init::Ones),
    }
}

/// One decoder block applied to `x` (`[B, T, d]`).
fn block_forward(
    b: &mut FuncBuilder,
    cfg: &TransformerConfig,
    params: &BlockParams,
    x: ValueId,
    mask: ValueId,
) -> Result<ValueId, IrError> {
    let (bsz, t, h, dh) = (cfg.batch, cfg.seq, cfg.heads, cfg.d_head());
    // Attention.
    let normed = nn::layer_norm(b, x, params.ln1_scale.0, params.ln1_bias.0)?;
    let qkv = b.dot(
        normed,
        params.w_qkv.0,
        DotDims {
            lhs_batch: vec![],
            rhs_batch: vec![],
            lhs_contract: vec![2],
            rhs_contract: vec![0],
        },
    )?; // [B, T, H, 3, dh]
    let pick = |b: &mut FuncBuilder, which: usize| -> Result<ValueId, IrError> {
        let s = b.slice(qkv, vec![0, 0, 0, which, 0], vec![bsz, t, h, which + 1, dh])?;
        let squeezed = b.reshape(s, [bsz, t, h, dh])?;
        b.transpose(squeezed, vec![0, 2, 1, 3]) // [B, H, T, dh]
    };
    let q = pick(b, 0)?;
    let k = pick(b, 1)?;
    let v = pick(b, 2)?;
    let kt = b.transpose(k, vec![0, 1, 3, 2])?; // [B, H, dh, T]
    let scores = b.dot(
        q,
        kt,
        DotDims {
            lhs_batch: vec![0, 1],
            rhs_batch: vec![0, 1],
            lhs_contract: vec![3],
            rhs_contract: vec![2],
        },
    )?; // [B, H, T, T]
    let scaled = b.binary_scalar(BinaryOp::Mul, scores, 1.0 / (dh as f32).sqrt())?;
    let mask_b = b.broadcast_in_dim(mask, [bsz, h, t, t], vec![2, 3])?;
    let neg_scalar = b.constant(Literal::scalar_f32(-1e9))?;
    let neg_inf = b.broadcast_in_dim(neg_scalar, [bsz, h, t, t], vec![])?;
    let masked = b.select(mask_b, scaled, neg_inf)?;
    let probs = nn::softmax(b, masked)?;
    let ctx = b.dot(
        probs,
        v,
        DotDims {
            lhs_batch: vec![0, 1],
            rhs_batch: vec![0, 1],
            lhs_contract: vec![3],
            rhs_contract: vec![2],
        },
    )?; // [B, H, T, dh]
    let ctx_bt = b.transpose(ctx, vec![0, 2, 1, 3])?; // [B, T, H, dh]
    let ctx_flat = b.reshape(ctx_bt, [bsz, t, cfg.d_model])?;
    let attn = nn::linear(b, ctx_flat, params.w_o.0)?;
    let x = b.add(x, attn)?;
    // MLP.
    let normed2 = nn::layer_norm(b, x, params.ln2_scale.0, params.ln2_bias.0)?;
    let up = nn::linear(b, normed2, params.w_up.0)?;
    let act = b.tanh(up)?;
    let down = nn::linear(b, act, params.w_down.0)?;
    let x = b.add(x, down)?;
    // The "additional normalization layer".
    nn::rms_scale(b, x, params.ln3_scale.0)
}

type LossParts = (
    FuncBuilder,
    ValueId,
    Vec<(ValueId, ValueId, ValueId)>,
    Vec<Init>,
);

/// Builds the forward loss of the Transformer; returns the builder, the
/// loss value, the parameter triples and the input inits.
fn build_loss(cfg: &TransformerConfig) -> Result<LossParts, IrError> {
    let mut b = FuncBuilder::new("transformer_train");
    let mut inits = Vec::new();
    let emb = param_with_opt(
        &mut b,
        &mut inits,
        "emb",
        TensorType::f32([cfg.vocab, cfg.d_model]),
        Init::Uniform(0.05),
    );
    let blocks: Vec<BlockParams> = (0..cfg.layers)
        .map(|l| declare_block(&mut b, &mut inits, cfg, l))
        .collect();
    let tokens = int_input(
        &mut b,
        &mut inits,
        "tokens",
        vec![cfg.batch, cfg.seq],
        cfg.vocab as i32,
    );
    let targets = int_input(
        &mut b,
        &mut inits,
        "targets",
        vec![cfg.batch, cfg.seq],
        cfg.vocab as i32,
    );

    // Embed.
    let flat = b.reshape(tokens, [cfg.batch * cfg.seq])?;
    let embedded = b.gather(emb.0, flat, 0)?; // [B*T, d]
    let mut x = b.reshape(embedded, [cfg.batch, cfg.seq, cfg.d_model])?;
    let mask = nn::causal_mask(&mut b, cfg.seq)?;
    for params in &blocks {
        x = block_forward(&mut b, cfg, params, x, mask)?;
    }
    // Tied unembedding.
    let emb_t = b.transpose(emb.0, vec![1, 0])?; // [d, V]
    let logits = nn::linear(&mut b, x, emb_t)?; // [B, T, V]
    let loss = nn::softmax_xent_mean(&mut b, logits, targets)?;

    let mut params = vec![emb];
    for blk in &blocks {
        params.extend(blk.all());
    }
    Ok((b, loss, params, inits))
}

/// Builds the full Transformer training step (forward + backward + Adam).
///
/// # Errors
///
/// Fails only on internal IR construction errors.
pub fn build_train_step(cfg: &TransformerConfig) -> Result<BuiltModel, IrError> {
    let (b, loss, params, inits) = build_loss(cfg)?;
    let func = finish_train_step(b, loss, &params)?;
    Ok(BuiltModel {
        func,
        inits,
        num_param_tensors: cfg.num_param_tensors(),
        name: format!("T{}", cfg.layers),
    })
}

/// Builds the forward-only loss function (used by examples and tests that
/// don't need the optimizer).
///
/// # Errors
///
/// Fails only on internal IR construction errors.
pub fn build_forward_loss(cfg: &TransformerConfig) -> Result<BuiltModel, IrError> {
    let (b, loss, _, inits) = build_loss(cfg)?;
    let func = b.build([loss])?;
    Ok(BuiltModel {
        func,
        inits,
        num_param_tensors: cfg.num_param_tensors(),
        name: format!("T{}-fwd", cfg.layers),
    })
}

/// Convenience: a forward loss func for arbitrary direct use.
pub fn tiny_forward() -> Func {
    build_forward_loss(&TransformerConfig::tiny())
        .expect("tiny transformer builds")
        .func
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::synthetic_inputs;
    use partir_ir::interp::interpret;

    #[test]
    fn t32_has_289_parameter_tensors() {
        let cfg = TransformerConfig::t32();
        assert_eq!(cfg.num_param_tensors(), 289);
        // 9·48 + 1 for T48.
        assert_eq!(TransformerConfig::t48().num_param_tensors(), 433);
    }

    #[test]
    fn tiny_train_step_builds_verifies_and_runs() {
        let model = build_train_step(&TransformerConfig::tiny()).unwrap();
        partir_ir::verify::verify_func(&model.func, None).unwrap();
        // Inputs: params + 2·moments per tensor + tokens + targets.
        assert_eq!(model.func.params().len(), model.num_param_tensors * 3 + 2);
        // Results: loss + params + m + v.
        assert_eq!(model.func.results().len(), model.num_param_tensors * 3 + 1);
        let inputs = synthetic_inputs(&model, 42);
        let out = interpret(&model.func, &inputs).unwrap();
        let loss = out[0].as_f32().unwrap()[0];
        assert!(loss.is_finite() && loss > 0.0, "loss {loss}");
        // Roughly ln(vocab) for random logits.
        assert!(loss < 2.0 * (TransformerConfig::tiny().vocab as f32).ln());
    }

    #[test]
    fn training_reduces_loss_over_steps() {
        // Run three manual steps feeding updated params back in.
        let cfg = TransformerConfig::tiny();
        let model = build_train_step(&cfg).unwrap();
        let mut inputs = synthetic_inputs(&model, 7);
        let first = interpret(&model.func, &inputs).unwrap();
        let mut last_loss = first[0].as_f32().unwrap()[0];
        let n = cfg.num_param_tensors();
        let mut out = first;
        for _ in 0..3 {
            // results: [loss, params(n), m(n), v(n)] → inputs
            // [params(n)·(p,m,v interleaved), tokens, targets].
            for i in 0..n {
                inputs[3 * i] = out[1 + i].clone();
                inputs[3 * i + 1] = out[1 + n + i].clone();
                inputs[3 * i + 2] = out[1 + 2 * n + i].clone();
            }
            out = interpret(&model.func, &inputs).unwrap();
        }
        let final_loss = out[0].as_f32().unwrap()[0];
        assert!(
            final_loss < last_loss,
            "loss did not improve: {last_loss} -> {final_loss}"
        );
        last_loss = final_loss;
        let _ = last_loss;
    }
}
