//! Inference Transformer with KV caching (the paper's IT32, §7.1,
//! citing the multi-query serving work of Pope et al.).
//!
//! The model decodes autoregressively inside a `for` serving loop
//! carrying the token buffer and per-layer KV caches; the paper notes
//! this loop "greatly amplifies the number of collectives" (Table 2's
//! 98304 all-reduces are 2 per layer × 32 layers × the loop trips).
//! Attention is *multi-query*: one shared K/V head, which is what makes
//! the paper's MQ sharding strategy (batch-sharded caches, A2A exchanges)
//! interesting.

use partir_ir::{
    BinaryOp, CompareDir, DType, DotDims, FuncBuilder, IrError, Literal, Shape, TensorType, ValueId,
};

use crate::nn;
use crate::train::{int_input, BuiltModel, Init};

/// Inference-transformer hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ITransformerConfig {
    /// Decoder blocks.
    pub layers: usize,
    /// Model width.
    pub d_model: usize,
    /// Query heads (K/V is multi-query: a single shared head).
    pub heads: usize,
    /// MLP hidden width.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Batch of sequences decoded together.
    pub batch: usize,
    /// Prompt length already in the buffer.
    pub prompt: usize,
    /// Serving-loop steps (tokens generated).
    pub steps: usize,
}

impl ITransformerConfig {
    /// The paper's IT32 structure (32 layers; the serving loop multiplies
    /// per-layer collectives) at CPU-simulable width. The paper's counts
    /// imply 1536 loop trips; we keep the structure and let the bench
    /// pick the trip count.
    pub fn it32(steps: usize) -> Self {
        ITransformerConfig {
            layers: 32,
            d_model: 64,
            heads: 8,
            d_ff: 256,
            vocab: 128,
            batch: 16,
            prompt: 8,
            steps,
        }
    }

    /// A tiny configuration for interpreter tests.
    pub fn tiny() -> Self {
        ITransformerConfig {
            layers: 2,
            d_model: 8,
            heads: 2,
            d_ff: 16,
            vocab: 16,
            batch: 4,
            prompt: 2,
            steps: 3,
        }
    }

    /// Per-head width.
    pub fn d_head(&self) -> usize {
        self.d_model / self.heads
    }

    /// Total token-buffer length.
    pub fn buffer_len(&self) -> usize {
        self.prompt + self.steps
    }
}

struct Block {
    ln1_scale: ValueId,
    w_q: ValueId,  // [d, d] (H query heads)
    w_kv: ValueId, // [d, 2·dh] (single shared K/V head)
    w_o: ValueId,  // [d, d]
    ln2_scale: ValueId,
    w_up: ValueId,
    w_down: ValueId,
}

/// Builds the serving loop. Function inputs: parameters, the initial
/// token buffer (`tokens`, prompt left-aligned) and zeroed KV caches.
/// Outputs: the decoded token buffer and final caches.
///
/// # Errors
///
/// Fails only on internal IR construction errors.
pub fn build_serving(cfg: &ITransformerConfig) -> Result<BuiltModel, IrError> {
    let mut b = FuncBuilder::new("itransformer_serve");
    let mut inits: Vec<Init> = Vec::new();
    let d = cfg.d_model;
    let dh = cfg.d_head();
    let (bsz, h) = (cfg.batch, cfg.heads);
    let total = cfg.buffer_len();
    let scale = 1.0 / (d as f32).sqrt();

    let emb = b.param("params.emb", TensorType::f32([cfg.vocab, d]));
    inits.push(Init::Uniform(0.05));
    let mut blocks = Vec::with_capacity(cfg.layers);
    for layer in 0..cfg.layers {
        let mut p = |name: &str, ty: TensorType, init: Init| {
            let v = b.param(format!("params.blk{layer}.{name}"), ty);
            inits.push(init);
            v
        };
        blocks.push(Block {
            ln1_scale: p("ln1_scale", TensorType::f32([d]), Init::Ones),
            w_q: p("w_q", TensorType::f32([d, d]), Init::Uniform(scale)),
            w_kv: p("w_kv", TensorType::f32([d, 2 * dh]), Init::Uniform(scale)),
            w_o: p("w_o", TensorType::f32([d, d]), Init::Uniform(scale)),
            ln2_scale: p("ln2_scale", TensorType::f32([d]), Init::Ones),
            w_up: p("w_up", TensorType::f32([d, cfg.d_ff]), Init::Uniform(scale)),
            w_down: p(
                "w_down",
                TensorType::f32([cfg.d_ff, d]),
                Init::Uniform(1.0 / (cfg.d_ff as f32).sqrt()),
            ),
        });
    }
    let tokens = int_input(
        &mut b,
        &mut inits,
        "tokens",
        vec![bsz, total],
        cfg.vocab as i32,
    );
    let mut caches = Vec::with_capacity(2 * cfg.layers);
    for layer in 0..cfg.layers {
        for which in ["k_cache", "v_cache"] {
            let c = b.param(format!("{which}{layer}"), TensorType::f32([bsz, total, dh]));
            inits.push(Init::Zeros);
            caches.push(c);
        }
    }

    let mut carried = vec![tokens];
    carried.extend(&caches);
    let results = b.for_loop(cfg.steps, &carried, |b, i, carried| {
        let tokens = carried[0];
        // Decode position: prompt - 1 + i.
        let base = b.const_i32(cfg.prompt as i32 - 1)?;
        let pos = b.binary(BinaryOp::Add, base, i)?;
        let zero = b.const_i32(0)?;
        let cur = b.dynamic_slice(tokens, &[zero, pos], vec![bsz, 1])?; // [B, 1]
        let cur_flat = b.reshape(cur, [bsz])?;
        let mut x = b.gather(emb, cur_flat, 0)?; // [B, d]

        let mut new_caches = Vec::with_capacity(carried.len() - 1);
        for (layer, blk) in blocks.iter().enumerate() {
            let k_cache = carried[1 + 2 * layer];
            let v_cache = carried[2 + 2 * layer];
            let normed = nn::rms_scale(b, x, blk.ln1_scale)?;
            // Queries: H heads.
            let q = nn::linear(b, normed, blk.w_q)?; // [B, d]
            let q = b.reshape(q, [bsz, h, dh])?;
            // Shared K/V (multi-query).
            let kv = nn::linear(b, normed, blk.w_kv)?; // [B, 2·dh]
            let k_new = b.slice(kv, vec![0, 0], vec![bsz, dh])?;
            let v_new = b.slice(kv, vec![0, dh], vec![bsz, 2 * dh])?;
            let k_row = b.reshape(k_new, [bsz, 1, dh])?;
            let v_row = b.reshape(v_new, [bsz, 1, dh])?;
            let k_cache = b.dynamic_update_slice(k_cache, k_row, &[zero, pos, zero])?;
            let v_cache = b.dynamic_update_slice(v_cache, v_row, &[zero, pos, zero])?;
            new_caches.push(k_cache);
            new_caches.push(v_cache);
            // Attention over the cache.
            let scores = b.dot(
                q,
                k_cache,
                DotDims {
                    lhs_batch: vec![0],
                    rhs_batch: vec![0],
                    lhs_contract: vec![2],
                    rhs_contract: vec![2],
                },
            )?; // [B, H, T]
            let scaled = b.binary_scalar(BinaryOp::Mul, scores, 1.0 / (dh as f32).sqrt())?;
            // Mask positions beyond `pos`.
            let idx = b.iota(2, Shape::from([bsz, h, total]), DType::I32)?;
            let pos_b = b.broadcast_in_dim(pos, [bsz, h, total], vec![])?;
            let visible = b.compare(CompareDir::Le, idx, pos_b)?;
            let neg_scalar = b.constant(Literal::scalar_f32(-1e9))?;
            let neg = b.broadcast_in_dim(neg_scalar, [bsz, h, total], vec![])?;
            let masked = b.select(visible, scaled, neg)?;
            let probs = nn::softmax(b, masked)?;
            let ctx = b.dot(
                probs,
                v_cache,
                DotDims {
                    lhs_batch: vec![0],
                    rhs_batch: vec![0],
                    lhs_contract: vec![2],
                    rhs_contract: vec![1],
                },
            )?; // [B, H, dh]
            let merged = b.reshape(ctx, [bsz, d])?;
            let attn = nn::linear(b, merged, blk.w_o)?;
            x = b.add(x, attn)?;
            // MLP.
            let normed2 = nn::rms_scale(b, x, blk.ln2_scale)?;
            let up = nn::linear(b, normed2, blk.w_up)?;
            let act = b.tanh(up)?;
            let down = nn::linear(b, act, blk.w_down)?;
            x = b.add(x, down)?;
        }
        // Greedy next token, written at pos + 1.
        let emb_t = b.transpose(emb, vec![1, 0])?;
        let logits = nn::linear(b, x, emb_t)?; // [B, V]
        let next = b.argmax(logits, 1)?; // [B]
        let next = b.reshape(next, [bsz, 1])?;
        let one = b.const_i32(1)?;
        let next_pos = b.binary(BinaryOp::Add, pos, one)?;
        let tokens = b.dynamic_update_slice(tokens, next, &[zero, next_pos])?;
        let mut yields = vec![tokens];
        yields.extend(new_caches);
        Ok(yields)
    })?;

    let num_param_tensors = 7 * cfg.layers + 1;
    let func = b.build(results)?;
    Ok(BuiltModel {
        func,
        inits,
        num_param_tensors,
        name: format!("IT{}", cfg.layers),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::synthetic_inputs;
    use partir_ir::interp::interpret;

    #[test]
    fn tiny_serving_loop_decodes_tokens() {
        let cfg = ITransformerConfig::tiny();
        let model = build_serving(&cfg).unwrap();
        partir_ir::verify::verify_func(&model.func, None).unwrap();
        let inputs = synthetic_inputs(&model, 9);
        let out = interpret(&model.func, &inputs).unwrap();
        // First output is the decoded buffer: ints within the vocabulary.
        let tokens = out[0].as_i32().unwrap();
        assert_eq!(out[0].shape().dims(), &[cfg.batch, cfg.buffer_len()]);
        assert!(tokens.iter().all(|&t| t >= 0 && t < cfg.vocab as i32));
        // Generated positions must be filled deterministically.
        let again = interpret(&model.func, &inputs).unwrap();
        assert_eq!(out[0], again[0]);
    }

    #[test]
    fn it32_structure() {
        let cfg = ITransformerConfig::it32(4);
        assert_eq!(cfg.layers, 32);
        let model = build_serving(&cfg).unwrap();
        // Params + tokens + 2 caches per layer.
        assert_eq!(
            model.func.params().len(),
            model.num_param_tensors + 1 + 2 * cfg.layers
        );
    }
}
