//! Inference Transformer with KV caching (the paper's IT32, §7.1,
//! citing the multi-query serving work of Pope et al.).
//!
//! The model decodes autoregressively inside a `for` serving loop
//! carrying the token buffer and per-layer KV caches; the paper notes
//! this loop "greatly amplifies the number of collectives" (Table 2's
//! 98304 all-reduces are 2 per layer × 32 layers × the loop trips).
//! Attention is *multi-query*: one shared K/V head, which is what makes
//! the paper's MQ sharding strategy (batch-sharded caches, A2A exchanges)
//! interesting.

use partir_ir::{
    BinaryOp, CompareDir, DType, DotDims, FuncBuilder, IrError, Literal, Shape, TensorType, ValueId,
};

use crate::nn;
use crate::train::{int_input, BuiltModel, Init};

/// Inference-transformer hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ITransformerConfig {
    /// Decoder blocks.
    pub layers: usize,
    /// Model width.
    pub d_model: usize,
    /// Query heads (K/V is multi-query: a single shared head).
    pub heads: usize,
    /// MLP hidden width.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// Batch of sequences decoded together.
    pub batch: usize,
    /// Prompt length already in the buffer.
    pub prompt: usize,
    /// Serving-loop steps (tokens generated).
    pub steps: usize,
}

impl ITransformerConfig {
    /// The paper's IT32 structure (32 layers; the serving loop multiplies
    /// per-layer collectives) at CPU-simulable width. The paper's counts
    /// imply 1536 loop trips; we keep the structure and let the bench
    /// pick the trip count.
    pub fn it32(steps: usize) -> Self {
        ITransformerConfig {
            layers: 32,
            d_model: 64,
            heads: 8,
            d_ff: 256,
            vocab: 128,
            batch: 16,
            prompt: 8,
            steps,
        }
    }

    /// A tiny configuration for interpreter tests.
    pub fn tiny() -> Self {
        ITransformerConfig {
            layers: 2,
            d_model: 8,
            heads: 2,
            d_ff: 16,
            vocab: 16,
            batch: 4,
            prompt: 2,
            steps: 3,
        }
    }

    /// Per-head width.
    pub fn d_head(&self) -> usize {
        self.d_model / self.heads
    }

    /// Total token-buffer length.
    pub fn buffer_len(&self) -> usize {
        self.prompt + self.steps
    }
}

struct Block {
    ln1_scale: ValueId,
    w_q: ValueId,  // [d, d] (H query heads)
    w_kv: ValueId, // [d, 2·dh] (single shared K/V head)
    w_o: ValueId,  // [d, d]
    ln2_scale: ValueId,
    w_up: ValueId,
    w_down: ValueId,
}

/// Declares the embedding plus per-block parameters shared by the
/// fixed-batch serving loop and the per-step decode function. Parameter
/// names and declaration order are identical in both entry points, so
/// [`crate::train::synthetic_inputs`] draws bit-identical weights for
/// matching hyper-parameters — the property the serving conformance
/// suite leans on.
fn declare_params(
    b: &mut FuncBuilder,
    inits: &mut Vec<Init>,
    layers: usize,
    d: usize,
    dh: usize,
    d_ff: usize,
    vocab: usize,
) -> (ValueId, Vec<Block>) {
    let scale = 1.0 / (d as f32).sqrt();
    let emb = b.param("params.emb", TensorType::f32([vocab, d]));
    inits.push(Init::Uniform(0.05));
    let mut blocks = Vec::with_capacity(layers);
    for layer in 0..layers {
        let mut p = |name: &str, ty: TensorType, init: Init| {
            let v = b.param(format!("params.blk{layer}.{name}"), ty);
            inits.push(init);
            v
        };
        blocks.push(Block {
            ln1_scale: p("ln1_scale", TensorType::f32([d]), Init::Ones),
            w_q: p("w_q", TensorType::f32([d, d]), Init::Uniform(scale)),
            w_kv: p("w_kv", TensorType::f32([d, 2 * dh]), Init::Uniform(scale)),
            w_o: p("w_o", TensorType::f32([d, d]), Init::Uniform(scale)),
            ln2_scale: p("ln2_scale", TensorType::f32([d]), Init::Ones),
            w_up: p("w_up", TensorType::f32([d, d_ff]), Init::Uniform(scale)),
            w_down: p(
                "w_down",
                TensorType::f32([d_ff, d]),
                Init::Uniform(1.0 / (d_ff as f32).sqrt()),
            ),
        });
    }
    (emb, blocks)
}

/// Builds the serving loop. Function inputs: parameters, the initial
/// token buffer (`tokens`, prompt left-aligned) and zeroed KV caches.
/// Outputs: the decoded token buffer and final caches.
///
/// # Errors
///
/// Fails only on internal IR construction errors.
pub fn build_serving(cfg: &ITransformerConfig) -> Result<BuiltModel, IrError> {
    let mut b = FuncBuilder::new("itransformer_serve");
    let mut inits: Vec<Init> = Vec::new();
    let d = cfg.d_model;
    let dh = cfg.d_head();
    let (bsz, h) = (cfg.batch, cfg.heads);
    let total = cfg.buffer_len();

    let (emb, blocks) = declare_params(&mut b, &mut inits, cfg.layers, d, dh, cfg.d_ff, cfg.vocab);
    let tokens = int_input(
        &mut b,
        &mut inits,
        "tokens",
        vec![bsz, total],
        cfg.vocab as i32,
    );
    let mut caches = Vec::with_capacity(2 * cfg.layers);
    for layer in 0..cfg.layers {
        for which in ["k_cache", "v_cache"] {
            let c = b.param(format!("{which}{layer}"), TensorType::f32([bsz, total, dh]));
            inits.push(Init::Zeros);
            caches.push(c);
        }
    }

    let mut carried = vec![tokens];
    carried.extend(&caches);
    let results = b.for_loop(cfg.steps, &carried, |b, i, carried| {
        let tokens = carried[0];
        // Decode position: prompt - 1 + i.
        let base = b.const_i32(cfg.prompt as i32 - 1)?;
        let pos = b.binary(BinaryOp::Add, base, i)?;
        let zero = b.const_i32(0)?;
        let cur = b.dynamic_slice(tokens, &[zero, pos], vec![bsz, 1])?; // [B, 1]
        let cur_flat = b.reshape(cur, [bsz])?;
        let mut x = b.gather(emb, cur_flat, 0)?; // [B, d]

        let mut new_caches = Vec::with_capacity(carried.len() - 1);
        for (layer, blk) in blocks.iter().enumerate() {
            let k_cache = carried[1 + 2 * layer];
            let v_cache = carried[2 + 2 * layer];
            let normed = nn::rms_scale(b, x, blk.ln1_scale)?;
            // Queries: H heads.
            let q = nn::linear(b, normed, blk.w_q)?; // [B, d]
            let q = b.reshape(q, [bsz, h, dh])?;
            // Shared K/V (multi-query).
            let kv = nn::linear(b, normed, blk.w_kv)?; // [B, 2·dh]
            let k_new = b.slice(kv, vec![0, 0], vec![bsz, dh])?;
            let v_new = b.slice(kv, vec![0, dh], vec![bsz, 2 * dh])?;
            let k_row = b.reshape(k_new, [bsz, 1, dh])?;
            let v_row = b.reshape(v_new, [bsz, 1, dh])?;
            let k_cache = b.dynamic_update_slice(k_cache, k_row, &[zero, pos, zero])?;
            let v_cache = b.dynamic_update_slice(v_cache, v_row, &[zero, pos, zero])?;
            new_caches.push(k_cache);
            new_caches.push(v_cache);
            // Attention over the cache.
            let scores = b.dot(
                q,
                k_cache,
                DotDims {
                    lhs_batch: vec![0],
                    rhs_batch: vec![0],
                    lhs_contract: vec![2],
                    rhs_contract: vec![2],
                },
            )?; // [B, H, T]
            let scaled = b.binary_scalar(BinaryOp::Mul, scores, 1.0 / (dh as f32).sqrt())?;
            // Mask positions beyond `pos`.
            let idx = b.iota(2, Shape::from([bsz, h, total]), DType::I32)?;
            let pos_b = b.broadcast_in_dim(pos, [bsz, h, total], vec![])?;
            let visible = b.compare(CompareDir::Le, idx, pos_b)?;
            let neg_scalar = b.constant(Literal::scalar_f32(-1e9))?;
            let neg = b.broadcast_in_dim(neg_scalar, [bsz, h, total], vec![])?;
            let masked = b.select(visible, scaled, neg)?;
            let probs = nn::softmax(b, masked)?;
            let ctx = b.dot(
                probs,
                v_cache,
                DotDims {
                    lhs_batch: vec![0],
                    rhs_batch: vec![0],
                    lhs_contract: vec![2],
                    rhs_contract: vec![1],
                },
            )?; // [B, H, dh]
            let merged = b.reshape(ctx, [bsz, d])?;
            let attn = nn::linear(b, merged, blk.w_o)?;
            x = b.add(x, attn)?;
            // MLP.
            let normed2 = nn::rms_scale(b, x, blk.ln2_scale)?;
            let up = nn::linear(b, normed2, blk.w_up)?;
            let act = b.tanh(up)?;
            let down = nn::linear(b, act, blk.w_down)?;
            x = b.add(x, down)?;
        }
        // Greedy next token, written at pos + 1.
        let emb_t = b.transpose(emb, vec![1, 0])?;
        let logits = nn::linear(b, x, emb_t)?; // [B, V]
        let next = b.argmax(logits, 1)?; // [B]
        let next = b.reshape(next, [bsz, 1])?;
        let one = b.const_i32(1)?;
        let next_pos = b.binary(BinaryOp::Add, pos, one)?;
        let tokens = b.dynamic_update_slice(tokens, next, &[zero, next_pos])?;
        let mut yields = vec![tokens];
        yields.extend(new_caches);
        Ok(yields)
    })?;

    let num_param_tensors = 7 * cfg.layers + 1;
    let func = b.build(results)?;
    Ok(BuiltModel {
        func,
        inits,
        num_param_tensors,
        name: format!("IT{}", cfg.layers),
    })
}

/// Hyper-parameters for the serving-shaped decode step: a fixed arena of
/// `slots` sequences, each owning a `max_seq`-long KV-cache slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingConfig {
    /// Decoder blocks.
    pub layers: usize,
    /// Model width.
    pub d_model: usize,
    /// Query heads (K/V is multi-query: a single shared head).
    pub heads: usize,
    /// MLP hidden width.
    pub d_ff: usize,
    /// Vocabulary size.
    pub vocab: usize,
    /// KV-cache slots — the maximum number of inflight sequences.
    pub slots: usize,
    /// Per-slot cache capacity (prompt + decode must fit).
    pub max_seq: usize,
}

impl ServingConfig {
    /// IT32 structure sized for continuous-batching benchmarks.
    pub fn it32() -> Self {
        ServingConfig {
            layers: 32,
            d_model: 64,
            heads: 8,
            d_ff: 256,
            vocab: 128,
            slots: 16,
            max_seq: 32,
        }
    }

    /// A tiny configuration for interpreter and conformance tests.
    /// `slots = 8` divides every batch×model tiling on the 1×2/2×2/4×2
    /// mesh ladder, so the slot arena shards on all of them.
    pub fn tiny() -> Self {
        ServingConfig {
            layers: 2,
            d_model: 8,
            heads: 2,
            d_ff: 16,
            vocab: 16,
            slots: 8,
            max_seq: 12,
        }
    }

    /// Per-head width.
    pub fn d_head(&self) -> usize {
        self.d_model / self.heads
    }

    /// The fixed-batch config whose [`build_serving`] loop decodes one
    /// request of the given shape alone — the conformance oracle. Same
    /// widths, batch 1, so [`crate::train::synthetic_inputs`] draws the
    /// same weights as for the decode step.
    pub fn oracle_config(&self, prompt: usize, steps: usize) -> ITransformerConfig {
        ITransformerConfig {
            layers: self.layers,
            d_model: self.d_model,
            heads: self.heads,
            d_ff: self.d_ff,
            vocab: self.vocab,
            batch: 1,
            prompt,
            steps,
        }
    }
}

/// Builds one decode step over the slot arena — the body of
/// [`build_serving`]'s loop restated so each slot carries its *own*
/// position, letting a host-side engine admit and retire sequences
/// between steps (continuous batching).
///
/// Inputs: parameters (same names, order and inits as [`build_serving`],
/// so the two entry points share weights for equal hyper-parameters),
/// then `tokens` `[S]` (current token per slot), `positions` `[S]`
/// (cache position this step writes and attends up to), `fresh` `[S]`
/// (non-zero ⇒ the slot was just admitted: its cache reads as zeros, so
/// retired slots recycle without host-side shard surgery), then per
/// layer `k_cache{l}`/`v_cache{l}` `[S, max_seq, dh]`.
///
/// Outputs: `next_tokens` `[S]` followed by the updated caches, in cache
/// input order — so a driver can feed cache outputs straight back as
/// next-step inputs.
///
/// Semantics match the oracle loop exactly, including its treatment of
/// prompts: the loop never runs the model over tokens before
/// `prompt - 1`, it attends over a zeroed cache prefix. A slot admitted
/// with `position = prompt_len - 1`, `token` = last prompt token and
/// `fresh = 1` therefore decodes bit-identically to the oracle. Rows are
/// independent (every op is elementwise, batched or row-gathered over
/// slot dim 0, and the dot kernels accumulate per output element in
/// ascending-k order), so whatever else occupies the arena cannot
/// perturb a slot's tokens.
///
/// # Errors
///
/// Fails only on internal IR construction errors.
pub fn build_decode_step(cfg: &ServingConfig) -> Result<BuiltModel, IrError> {
    let mut b = FuncBuilder::new("itransformer_decode_step");
    let mut inits: Vec<Init> = Vec::new();
    let d = cfg.d_model;
    let dh = cfg.d_head();
    let (s, h, t_max) = (cfg.slots, cfg.heads, cfg.max_seq);

    let (emb, blocks) = declare_params(&mut b, &mut inits, cfg.layers, d, dh, cfg.d_ff, cfg.vocab);
    let tokens = int_input(&mut b, &mut inits, "tokens", vec![s], cfg.vocab as i32);
    let positions = int_input(&mut b, &mut inits, "positions", vec![s], t_max as i32);
    let fresh = int_input(&mut b, &mut inits, "fresh", vec![s], 2);
    let mut caches = Vec::with_capacity(2 * cfg.layers);
    for layer in 0..cfg.layers {
        for which in ["k_cache", "v_cache"] {
            let c = b.param(format!("{which}{layer}"), TensorType::f32([s, t_max, dh]));
            inits.push(Init::Zeros);
            caches.push(c);
        }
    }

    // Loop-invariant slot masks, hoisted out of the layer loop.
    // `keep`: slot is not freshly admitted, so its cache contents are live.
    let zero_i = b.const_i32(0)?;
    let zero_ib = b.broadcast_in_dim(zero_i, [s, t_max, dh], vec![])?;
    let fresh_b = b.broadcast_in_dim(fresh, [s, t_max, dh], vec![0])?;
    let keep = b.compare(CompareDir::Eq, fresh_b, zero_ib)?;
    let zero_f = b.constant(Literal::scalar_f32(0.0))?;
    let cache_zeros = b.broadcast_in_dim(zero_f, [s, t_max, dh], vec![])?;
    // `at_pos`: one-hot along the sequence dim at each slot's position —
    // the per-slot analogue of the oracle's dynamic_update_slice.
    let t_idx = b.iota(1, Shape::from([s, t_max, dh]), DType::I32)?;
    let pos_b3 = b.broadcast_in_dim(positions, [s, t_max, dh], vec![0])?;
    let at_pos = b.compare(CompareDir::Eq, t_idx, pos_b3)?;

    let mut x = b.gather(emb, tokens, 0)?; // [S, d]
    let mut new_caches = Vec::with_capacity(2 * cfg.layers);
    for (layer, blk) in blocks.iter().enumerate() {
        let k_in = caches[2 * layer];
        let v_in = caches[2 * layer + 1];
        // Recycle freshly-admitted slots: their cache reads as zeros.
        let k_base = b.select(keep, k_in, cache_zeros)?;
        let v_base = b.select(keep, v_in, cache_zeros)?;
        let normed = nn::rms_scale(&mut b, x, blk.ln1_scale)?;
        // Queries: H heads.
        let q = nn::linear(&mut b, normed, blk.w_q)?; // [S, d]
        let q = b.reshape(q, [s, h, dh])?;
        // Shared K/V (multi-query).
        let kv = nn::linear(&mut b, normed, blk.w_kv)?; // [S, 2·dh]
        let k_new = b.slice(kv, vec![0, 0], vec![s, dh])?;
        let v_new = b.slice(kv, vec![0, dh], vec![s, 2 * dh])?;
        // Write each slot's K/V row at that slot's own position.
        let k_bcast = b.broadcast_in_dim(k_new, [s, t_max, dh], vec![0, 2])?;
        let v_bcast = b.broadcast_in_dim(v_new, [s, t_max, dh], vec![0, 2])?;
        let k_cache = b.select(at_pos, k_bcast, k_base)?;
        let v_cache = b.select(at_pos, v_bcast, v_base)?;
        new_caches.push(k_cache);
        new_caches.push(v_cache);
        // Attention over the cache.
        let scores = b.dot(
            q,
            k_cache,
            DotDims {
                lhs_batch: vec![0],
                rhs_batch: vec![0],
                lhs_contract: vec![2],
                rhs_contract: vec![2],
            },
        )?; // [S, H, T]
        let scaled = b.binary_scalar(BinaryOp::Mul, scores, 1.0 / (dh as f32).sqrt())?;
        // Mask positions beyond each slot's own position.
        let idx = b.iota(2, Shape::from([s, h, t_max]), DType::I32)?;
        let pos_b = b.broadcast_in_dim(positions, [s, h, t_max], vec![0])?;
        let visible = b.compare(CompareDir::Le, idx, pos_b)?;
        let neg_scalar = b.constant(Literal::scalar_f32(-1e9))?;
        let neg = b.broadcast_in_dim(neg_scalar, [s, h, t_max], vec![])?;
        let masked = b.select(visible, scaled, neg)?;
        let probs = nn::softmax(&mut b, masked)?;
        let ctx = b.dot(
            probs,
            v_cache,
            DotDims {
                lhs_batch: vec![0],
                rhs_batch: vec![0],
                lhs_contract: vec![2],
                rhs_contract: vec![1],
            },
        )?; // [S, H, dh]
        let merged = b.reshape(ctx, [s, d])?;
        let attn = nn::linear(&mut b, merged, blk.w_o)?;
        x = b.add(x, attn)?;
        // MLP.
        let normed2 = nn::rms_scale(&mut b, x, blk.ln2_scale)?;
        let up = nn::linear(&mut b, normed2, blk.w_up)?;
        let act = b.tanh(up)?;
        let down = nn::linear(&mut b, act, blk.w_down)?;
        x = b.add(x, down)?;
    }
    // Greedy next token per slot.
    let emb_t = b.transpose(emb, vec![1, 0])?;
    let logits = nn::linear(&mut b, x, emb_t)?; // [S, V]
    let next = b.argmax(logits, 1)?; // [S]

    let mut results = vec![next];
    results.extend(new_caches);
    let num_param_tensors = 7 * cfg.layers + 1;
    let func = b.build(results)?;
    Ok(BuiltModel {
        func,
        inits,
        num_param_tensors,
        name: format!("IT{}-serve", cfg.layers),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::train::synthetic_inputs;
    use partir_ir::interp::interpret;

    #[test]
    fn tiny_serving_loop_decodes_tokens() {
        let cfg = ITransformerConfig::tiny();
        let model = build_serving(&cfg).unwrap();
        partir_ir::verify::verify_func(&model.func, None).unwrap();
        let inputs = synthetic_inputs(&model, 9);
        let out = interpret(&model.func, &inputs).unwrap();
        // First output is the decoded buffer: ints within the vocabulary.
        let tokens = out[0].as_i32().unwrap();
        assert_eq!(out[0].shape().dims(), &[cfg.batch, cfg.buffer_len()]);
        assert!(tokens.iter().all(|&t| t >= 0 && t < cfg.vocab as i32));
        // Generated positions must be filled deterministically.
        let again = interpret(&model.func, &inputs).unwrap();
        assert_eq!(out[0], again[0]);
    }

    /// Runs `build_serving` alone on one request and returns the tokens
    /// it generates (positions `prompt..prompt+steps` of the buffer).
    fn oracle_tokens(scfg: &ServingConfig, seed: u64, prompt: &[i32], steps: usize) -> Vec<i32> {
        let ocfg = scfg.oracle_config(prompt.len(), steps);
        let oracle = build_serving(&ocfg).unwrap();
        let mut oin = synthetic_inputs(&oracle, seed);
        let total = ocfg.buffer_len();
        let mut buf = vec![0i32; total];
        buf[..prompt.len()].copy_from_slice(prompt);
        oin[oracle.num_param_tensors] = Literal::from_i32(buf, Shape::from([1, total])).unwrap();
        let out = interpret(&oracle.func, &oin).unwrap();
        let buf = out[0].as_i32().unwrap();
        buf[prompt.len()..prompt.len() + steps].to_vec()
    }

    /// Two concurrent requests through the decode step, driven by a
    /// hand-rolled host loop, decode bit-identically to each request run
    /// alone through the serving loop — the slot-arena independence
    /// property the `partir-serve` engine is built on.
    #[test]
    fn decode_step_matches_serving_loop_bitwise() {
        let scfg = ServingConfig::tiny();
        let seed = 9;
        let decode = build_decode_step(&scfg).unwrap();
        partir_ir::verify::verify_func(&decode.func, None).unwrap();
        let n = decode.num_param_tensors;
        let params = &synthetic_inputs(&decode, seed)[..n];
        {
            let ocfg = scfg.oracle_config(2, 1);
            let oracle = build_serving(&ocfg).unwrap();
            assert_eq!(&synthetic_inputs(&oracle, seed)[..n], params);
        }

        // Request A in slot 2, request B in slot 5; B admitted one step
        // after A. Remaining slots stay inactive (zeros).
        let a_prompt = [3i32, 5, 1];
        let b_prompt = [7i32];
        let (a_steps, b_steps) = (4usize, 3usize);
        let s = scfg.slots;
        let mut tok = vec![0i32; s];
        let mut pos = vec![0i32; s];
        let mut fresh = vec![0i32; s];
        let mut caches: Vec<Literal> = decode.func.params()[n + 3..]
            .iter()
            .map(|&p| Literal::zeros(decode.func.value_type(p)))
            .collect();
        let mut a_out = Vec::new();
        let mut b_out = Vec::new();
        for step in 0..(1 + b_steps.max(a_steps)) {
            if step == 0 {
                tok[2] = *a_prompt.last().unwrap();
                pos[2] = a_prompt.len() as i32 - 1;
                fresh[2] = 1;
            }
            if step == 1 {
                tok[5] = *b_prompt.last().unwrap();
                pos[5] = b_prompt.len() as i32 - 1;
                fresh[5] = 1;
            }
            let mut inputs = params.to_vec();
            inputs.push(Literal::from_i32(tok.clone(), Shape::from([s])).unwrap());
            inputs.push(Literal::from_i32(pos.clone(), Shape::from([s])).unwrap());
            inputs.push(Literal::from_i32(fresh.clone(), Shape::from([s])).unwrap());
            inputs.extend(caches.iter().cloned());
            let out = interpret(&decode.func, &inputs).unwrap();
            let next = out[0].as_i32().unwrap();
            caches = out[1..].to_vec();
            fresh = vec![0; s];
            if a_out.len() < a_steps {
                a_out.push(next[2]);
                tok[2] = next[2];
                pos[2] += 1;
            }
            if step >= 1 && b_out.len() < b_steps {
                b_out.push(next[5]);
                tok[5] = next[5];
                pos[5] += 1;
            }
        }
        assert_eq!(a_out, oracle_tokens(&scfg, seed, &a_prompt, a_steps));
        assert_eq!(b_out, oracle_tokens(&scfg, seed, &b_prompt, b_steps));
    }

    #[test]
    fn it32_structure() {
        let cfg = ITransformerConfig::it32(4);
        assert_eq!(cfg.layers, 32);
        let model = build_serving(&cfg).unwrap();
        // Params + tokens + 2 caches per layer.
        assert_eq!(
            model.func.params().len(),
            model.num_param_tensors + 1 + 2 * cfg.layers
        );
    }
}
