//! Reverse-mode automatic differentiation over the `partir-ir` tensor IR,
//! plus an Adam optimizer graph builder.
//!
//! The paper partitions full *training steps* — forward pass, loss,
//! back-propagation and optimizer update (§2.3 "a note on scale"). JAX
//! provides those graphs via tracing `jax.grad`; this crate rebuilds the
//! capability: [`backward`] appends the backward pass to a function under
//! construction, and [`adam_update`] appends optimizer-update arithmetic,
//! so model builders can produce the same graph *shape* PartIR sees in
//! production.
//!
//! # Examples
//!
//! Differentiate `sum((x·w)²)` with respect to `w`:
//!
//! ```
//! use partir_autodiff::backward;
//! use partir_ir::{FuncBuilder, TensorType};
//!
//! let mut b = FuncBuilder::new("train");
//! let x = b.param("x", TensorType::f32([4, 8]));
//! let w = b.param("w", TensorType::f32([8, 2]));
//! let y = b.matmul(x, w)?;
//! let sq = b.mul(y, y)?;
//! let loss = b.reduce_sum(sq, vec![0, 1])?;
//! let grads = backward(&mut b, loss, &[w])?;
//! let f = b.build([loss, grads[0]])?;
//! assert_eq!(f.results().len(), 2);
//! # Ok::<(), partir_ir::IrError>(())
//! ```

#![forbid(unsafe_code)]

mod adam;
mod vjp;

pub use adam::{adam_update, AdamConfig};

use std::collections::HashMap;

use partir_ir::{FuncBuilder, IrError, Literal, OpKind, ValueId};

/// Appends the reverse-mode backward pass for scalar `loss` to `b` and
/// returns `d loss / d v` for each value in `wrt` (zeros when a value does
/// not influence the loss).
///
/// # Errors
///
/// Fails if `loss` is not a scalar f32 value, or if an op on the path from
/// `wrt` to `loss` has no differentiation rule (e.g. `for` loops,
/// dynamic slices and second-order convolution gradients).
pub fn backward(
    b: &mut FuncBuilder,
    loss: ValueId,
    wrt: &[ValueId],
) -> Result<Vec<ValueId>, IrError> {
    let loss_ty = b.ty(loss).clone();
    if loss_ty.rank() != 0 || !loss_ty.dtype.is_float() {
        return Err(IrError::invalid(format!(
            "backward requires a scalar f32 loss, got {loss_ty}"
        )));
    }
    // Cotangent accumulator per value.
    let mut grads: HashMap<ValueId, ValueId> = HashMap::new();
    let seed = b.constant(Literal::scalar_f32(1.0))?;
    grads.insert(loss, seed);

    // Walk the tape backwards. Ops appended by VJP rules land *after* the
    // snapshot length, so the traversal covers the forward ops only.
    let num_forward_ops = b.recorded_ops().len() - 1; // exclude the seed constant
    for op_index in (0..num_forward_ops).rev() {
        let op = &b.recorded_ops()[op_index];
        if op.region.is_some() {
            // A `for` loop only matters if any of its results carries a
            // cotangent; training-step graphs never put the loss behind one.
            if op.results.iter().any(|r| grads.contains_key(r)) {
                return Err(IrError::unsupported(
                    "backward through region ops (for loops)",
                ));
            }
            continue;
        }
        let result = op.results[0];
        let Some(&cot) = grads.get(&result) else {
            continue; // result does not influence the loss
        };
        let kind = op.kind.clone();
        let operands = op.operands.clone();
        let contributions = vjp::vjp(b, &kind, &operands, result, cot)?;
        for (operand, contribution) in operands.iter().zip(contributions) {
            let Some(contribution) = contribution else {
                continue;
            };
            match grads.get(operand) {
                Some(&existing) => {
                    let sum = b.add(existing, contribution)?;
                    grads.insert(*operand, sum);
                }
                None => {
                    grads.insert(*operand, contribution);
                }
            }
        }
    }

    wrt.iter()
        .map(|&v| match grads.get(&v) {
            Some(&g) => Ok(g),
            None => {
                let ty = b.ty(v).clone();
                b.constant(Literal::zeros(&ty))
            }
        })
        .collect()
}

/// Whether [`backward`] has a differentiation rule for `kind`.
pub fn is_differentiable(kind: &OpKind) -> bool {
    vjp::has_rule(kind)
}
