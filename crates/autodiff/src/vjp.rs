//! Per-op vector-Jacobian products.
//!
//! Each rule receives the forward op, its operands, its (single) result
//! and the result's cotangent, and emits IR computing the cotangent
//! contribution for every operand (`None` for non-differentiable operands
//! such as predicates and integer indices).

use partir_ir::{
    BinaryOp, CompareDir, DotDims, FuncBuilder, IrError, Literal, OpKind, UnaryOp, ValueId,
};

/// Whether a VJP rule exists for `kind`.
pub fn has_rule(kind: &OpKind) -> bool {
    !matches!(
        kind,
        OpKind::For { .. }
            | OpKind::Collective(_)
            | OpKind::DynamicSlice { .. }
            | OpKind::DynamicUpdateSlice
            | OpKind::ConvInputGrad { .. }
            | OpKind::ConvFilterGrad { .. }
    )
}

/// Emits the VJP of one op; returns one optional cotangent per operand.
///
/// # Errors
///
/// Fails for ops without rules ([`has_rule`] is false) and for a few
/// attribute combinations the model zoo never produces (documented on
/// each arm).
pub fn vjp(
    b: &mut FuncBuilder,
    kind: &OpKind,
    operands: &[ValueId],
    result: ValueId,
    cot: ValueId,
) -> Result<Vec<Option<ValueId>>, IrError> {
    match kind {
        OpKind::Constant(_) | OpKind::Iota { .. } => Ok(vec![]),
        OpKind::Unary(u) => {
            let x = operands[0];
            let g = match u {
                UnaryOp::Neg => b.neg(cot)?,
                UnaryOp::Exp => b.mul(cot, result)?,
                UnaryOp::Log => b.div(cot, x)?,
                UnaryOp::Tanh => {
                    // 1 - tanh(x)^2
                    let sq = b.mul(result, result)?;
                    let one = ones_like(b, result)?;
                    let oneminus = b.sub(one, sq)?;
                    b.mul(cot, oneminus)?
                }
                UnaryOp::Sqrt => {
                    // g / (2 sqrt x)
                    let half = b.binary_scalar(BinaryOp::Mul, cot, 0.5)?;
                    b.div(half, result)?
                }
                UnaryOp::Rsqrt => {
                    // d/dx x^{-1/2} = -1/2 x^{-3/2} = -1/2 rsqrt(x)^3
                    let cube0 = b.mul(result, result)?;
                    let cube = b.mul(cube0, result)?;
                    let scaled = b.binary_scalar(BinaryOp::Mul, cube, -0.5)?;
                    b.mul(cot, scaled)?
                }
                UnaryOp::Abs => {
                    let zero = zeros_like(b, x)?;
                    let pos = b.compare(CompareDir::Ge, x, zero)?;
                    let neg = b.neg(cot)?;
                    b.select(pos, cot, neg)?
                }
                UnaryOp::Logistic => {
                    // s (1 - s)
                    let one = ones_like(b, result)?;
                    let oneminus = b.sub(one, result)?;
                    let d = b.mul(result, oneminus)?;
                    b.mul(cot, d)?
                }
                UnaryOp::Sin => {
                    let c = b.unary(UnaryOp::Cos, x)?;
                    b.mul(cot, c)?
                }
                UnaryOp::Cos => {
                    let s = b.unary(UnaryOp::Sin, x)?;
                    let ns = b.neg(s)?;
                    b.mul(cot, ns)?
                }
            };
            Ok(vec![Some(g)])
        }
        OpKind::Binary(op) => {
            let (x, y) = (operands[0], operands[1]);
            match op {
                BinaryOp::Add => Ok(vec![Some(cot), Some(cot)]),
                BinaryOp::Sub => {
                    let gy = b.neg(cot)?;
                    Ok(vec![Some(cot), Some(gy)])
                }
                BinaryOp::Mul => {
                    let gx = b.mul(cot, y)?;
                    let gy = b.mul(cot, x)?;
                    Ok(vec![Some(gx), Some(gy)])
                }
                BinaryOp::Div => {
                    let gx = b.div(cot, y)?;
                    // gy = -g x / y^2 = -(g/y) * (x/y) = -gx * result
                    let t = b.mul(gx, result)?;
                    let gy = b.neg(t)?;
                    Ok(vec![Some(gx), Some(gy)])
                }
                BinaryOp::Max | BinaryOp::Min => {
                    let dir = if matches!(op, BinaryOp::Max) {
                        CompareDir::Ge
                    } else {
                        CompareDir::Le
                    };
                    let zero = zeros_like(b, cot)?;
                    let takes_x = b.compare(dir, x, y)?;
                    let gx = b.select(takes_x, cot, zero)?;
                    let gy = b.select(takes_x, zero, cot)?;
                    Ok(vec![Some(gx), Some(gy)])
                }
                BinaryOp::Pow => {
                    // gx = g * y * x^(y-1);  gy = g * x^y * ln x
                    let one = ones_like(b, y)?;
                    let ym1 = b.sub(y, one)?;
                    let xym1 = b.binary(BinaryOp::Pow, x, ym1)?;
                    let t = b.mul(y, xym1)?;
                    let gx = b.mul(cot, t)?;
                    let lnx = b.log(x)?;
                    let t2 = b.mul(result, lnx)?;
                    let gy = b.mul(cot, t2)?;
                    Ok(vec![Some(gx), Some(gy)])
                }
            }
        }
        OpKind::Compare(_) => Ok(vec![None, None]),
        OpKind::Select => {
            let pred = operands[0];
            let zero = zeros_like(b, cot)?;
            let gt = b.select(pred, cot, zero)?;
            let gf = b.select(pred, zero, cot)?;
            Ok(vec![None, Some(gt), Some(gf)])
        }
        OpKind::Convert(_) => {
            let src_ty = b.ty(operands[0]).clone();
            if src_ty.dtype.is_float() && b.ty(cot).dtype.is_float() {
                let g = b.convert(cot, src_ty.dtype)?;
                Ok(vec![Some(g)])
            } else {
                Ok(vec![None])
            }
        }
        OpKind::Dot(dims) => vjp_dot(b, dims, operands, cot),
        OpKind::Transpose { perm } => {
            let mut inverse = vec![0usize; perm.len()];
            for (i, &p) in perm.iter().enumerate() {
                inverse[p] = i;
            }
            let g = b.transpose(cot, inverse)?;
            Ok(vec![Some(g)])
        }
        OpKind::Reshape { .. } => {
            let src_shape = b.ty(operands[0]).shape.clone();
            let g = b.reshape(cot, src_shape)?;
            Ok(vec![Some(g)])
        }
        OpKind::BroadcastInDim {
            shape,
            broadcast_dims,
        } => {
            let src_shape = b.ty(operands[0]).shape.clone();
            // Sum over result dims not mapped from the operand, plus dims
            // where the operand had size 1 but was expanded.
            let mut reduce_dims: Vec<usize> = (0..shape.rank())
                .filter(|d| !broadcast_dims.contains(d))
                .collect();
            for (i, &bd) in broadcast_dims.iter().enumerate() {
                if src_shape.dim(i) == 1 && shape.dim(bd) != 1 {
                    reduce_dims.push(bd);
                }
            }
            reduce_dims.sort_unstable();
            let summed = if reduce_dims.is_empty() {
                cot
            } else {
                b.reduce_sum(cot, reduce_dims)?
            };
            let g = b.reshape(summed, src_shape)?;
            Ok(vec![Some(g)])
        }
        OpKind::Reduce { op, dims } => {
            let src_shape = b.ty(operands[0]).shape.clone();
            let kept: Vec<usize> = (0..src_shape.rank())
                .filter(|d| !dims.contains(d))
                .collect();
            match op {
                partir_ir::ReduceOp::Sum => {
                    let g = b.broadcast_in_dim(cot, src_shape, kept)?;
                    Ok(vec![Some(g)])
                }
                partir_ir::ReduceOp::Max | partir_ir::ReduceOp::Min => {
                    // Gradient flows to elements equal to the extremum
                    // (ties receive the full cotangent, as in XLA).
                    let x = operands[0];
                    let bres = b.broadcast_in_dim(result, src_shape.clone(), kept.clone())?;
                    let bcot = b.broadcast_in_dim(cot, src_shape.clone(), kept)?;
                    let mask = b.compare(CompareDir::Eq, x, bres)?;
                    let zero = zeros_like(b, x)?;
                    let g = b.select(mask, bcot, zero)?;
                    Ok(vec![Some(g)])
                }
                partir_ir::ReduceOp::Prod => {
                    Err(IrError::unsupported("gradient of product reductions"))
                }
            }
        }
        OpKind::Slice {
            starts,
            limits,
            strides,
        } => {
            if strides.iter().any(|&s| s != 1) {
                return Err(IrError::unsupported("gradient of strided slices"));
            }
            let src_shape = b.ty(operands[0]).shape.clone();
            let low: Vec<i64> = starts.iter().map(|&s| s as i64).collect();
            let high: Vec<i64> = (0..src_shape.rank())
                .map(|d| src_shape.dim(d) as i64 - limits[d] as i64)
                .collect();
            let zero = b.const_f32(0.0)?;
            let g = b.pad(cot, zero, low, high)?;
            Ok(vec![Some(g)])
        }
        OpKind::Pad { low, high } => {
            if low.iter().chain(high).any(|&p| p < 0) {
                return Err(IrError::unsupported("gradient of negative padding"));
            }
            let src_shape = b.ty(operands[0]).shape.clone();
            let starts: Vec<usize> = low.iter().map(|&l| l as usize).collect();
            let limits: Vec<usize> = (0..src_shape.rank())
                .map(|d| starts[d] + src_shape.dim(d))
                .collect();
            let g = b.slice(cot, starts, limits)?;
            // The pad value receives the sum of the padding positions'
            // cotangents; models never differentiate w.r.t. it, so zero.
            let gz = b.const_f32(0.0)?;
            Ok(vec![Some(g), Some(gz)])
        }
        OpKind::Concatenate { dim } => {
            let mut out = Vec::with_capacity(operands.len());
            let rank = b.ty(operands[0]).rank();
            let mut offset = 0usize;
            for &operand in operands {
                let shape = b.ty(operand).shape.clone();
                let mut starts = vec![0; rank];
                let mut limits: Vec<usize> = b.ty(cot).shape.dims().to_vec();
                starts[*dim] = offset;
                limits[*dim] = offset + shape.dim(*dim);
                offset += shape.dim(*dim);
                out.push(Some(b.slice(cot, starts, limits)?));
            }
            Ok(out)
        }
        OpKind::Gather { axis } => {
            let src_size = b.ty(operands[0]).shape.dim(*axis);
            let g = b.scatter_add(cot, operands[1], *axis, src_size)?;
            Ok(vec![Some(g), None])
        }
        OpKind::ScatterAdd { axis, .. } => {
            let g = b.gather(cot, operands[1], *axis)?;
            Ok(vec![Some(g), None])
        }
        OpKind::Convolution(dims) => {
            let (input, kernel) = (operands[0], operands[1]);
            let in_shape = b.ty(input).shape.clone();
            let k_shape = b.ty(kernel).shape.clone();
            let ginput = b.emit(
                OpKind::ConvInputGrad {
                    dims: *dims,
                    input_hw: (in_shape.dim(2), in_shape.dim(3)),
                },
                &[cot, kernel],
            )?[0];
            let gkernel = b.emit(
                OpKind::ConvFilterGrad {
                    dims: *dims,
                    kernel_hw: (k_shape.dim(2), k_shape.dim(3)),
                },
                &[input, cot],
            )?[0];
            Ok(vec![Some(ginput), Some(gkernel)])
        }
        OpKind::ArgMax { .. } => Ok(vec![None]),
        OpKind::For { .. }
        | OpKind::Collective(_)
        | OpKind::DynamicSlice { .. }
        | OpKind::DynamicUpdateSlice
        | OpKind::ConvInputGrad { .. }
        | OpKind::ConvFilterGrad { .. } => Err(IrError::unsupported(format!(
            "no differentiation rule for {}",
            kind.name()
        ))),
    }
}

fn vjp_dot(
    b: &mut FuncBuilder,
    dims: &DotDims,
    operands: &[ValueId],
    cot: ValueId,
) -> Result<Vec<Option<ValueId>>, IrError> {
    let (lhs, rhs) = (operands[0], operands[1]);
    let lhs_rank = b.ty(lhs).rank();
    let rhs_rank = b.ty(rhs).rank();
    let lhs_free = dims.free_dims(lhs_rank, true);
    let rhs_free = dims.free_dims(rhs_rank, false);
    let nb = dims.lhs_batch.len();
    let (nlf, nrf) = (lhs_free.len(), rhs_free.len());

    // d lhs = dot(cot, rhs) contracting cot's rhs_free block with rhs's
    // free dims, batched over the shared batch block; then transpose into
    // lhs layout.
    let dlhs_raw = b.dot(
        cot,
        rhs,
        DotDims {
            lhs_batch: (0..nb).collect(),
            rhs_batch: dims.rhs_batch.clone(),
            lhs_contract: (nb + nlf..nb + nlf + nrf).collect(),
            rhs_contract: rhs_free.clone(),
        },
    )?;
    // dlhs_raw layout: [batch…, lhs_free…, rhs_contract…]
    let mut perm = vec![0usize; lhs_rank];
    for (i, &d) in dims.lhs_batch.iter().enumerate() {
        perm[d] = i;
    }
    for (j, &d) in lhs_free.iter().enumerate() {
        perm[d] = nb + j;
    }
    for (k, &d) in dims.lhs_contract.iter().enumerate() {
        perm[d] = nb + nlf + k;
    }
    let dlhs = b.transpose(dlhs_raw, perm)?;

    // d rhs = dot(cot, lhs) contracting cot's lhs_free block with lhs's
    // free dims. Raw layout: [batch…, rhs_free…, lhs_contract…].
    let drhs_raw = b.dot(
        cot,
        lhs,
        DotDims {
            lhs_batch: (0..nb).collect(),
            rhs_batch: dims.lhs_batch.clone(),
            lhs_contract: (nb..nb + nlf).collect(),
            rhs_contract: lhs_free.clone(),
        },
    )?;
    let mut perm = vec![0usize; rhs_rank];
    for (i, &d) in dims.rhs_batch.iter().enumerate() {
        perm[d] = i;
    }
    for (j, &d) in rhs_free.iter().enumerate() {
        perm[d] = nb + j;
    }
    for (k, &d) in dims.rhs_contract.iter().enumerate() {
        perm[d] = nb + nrf + k;
    }
    let drhs = b.transpose(drhs_raw, perm)?;
    Ok(vec![Some(dlhs), Some(drhs)])
}

fn zeros_like(b: &mut FuncBuilder, v: ValueId) -> Result<ValueId, IrError> {
    let shape = b.ty(v).shape.clone();
    let c = b.constant(Literal::scalar_f32(0.0))?;
    b.broadcast_in_dim(c, shape, vec![])
}

fn ones_like(b: &mut FuncBuilder, v: ValueId) -> Result<ValueId, IrError> {
    let shape = b.ty(v).shape.clone();
    let c = b.constant(Literal::scalar_f32(1.0))?;
    b.broadcast_in_dim(c, shape, vec![])
}
