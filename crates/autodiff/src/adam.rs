//! Adam optimizer update as IR (Kingma & Ba; the optimizer used by all
//! benchmark models, paper Appendix A.3).

use partir_ir::{BinaryOp, FuncBuilder, IrError, ValueId};

/// Adam hyper-parameters.
///
/// `step` enters the graph as a constant, fixing the bias-correction
/// factors; this matches how a staged training step is traced for a given
/// iteration and keeps the graph shape identical across steps.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdamConfig {
    /// Learning rate.
    pub lr: f32,
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical fuzz.
    pub eps: f32,
    /// Step number used for bias correction (1-based).
    pub step: u32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            lr: 1e-3,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            step: 1,
        }
    }
}

/// Appends one Adam update for parameter `p` with gradient `g` and moments
/// `(m, v)`; returns `(new_p, new_m, new_v)`.
///
/// The emitted arithmetic is all element-wise, which is what lets PartIR
/// propagation *infer* optimizer-state sharding from parameter sharding
/// (and vice versa — the key to the Z2/Z3 schedules, paper §5.2.2).
///
/// # Errors
///
/// Fails if the four value types disagree.
pub fn adam_update(
    b: &mut FuncBuilder,
    p: ValueId,
    g: ValueId,
    m: ValueId,
    v: ValueId,
    cfg: &AdamConfig,
) -> Result<(ValueId, ValueId, ValueId), IrError> {
    let ty = b.ty(p).clone();
    for other in [g, m, v] {
        if b.ty(other) != &ty {
            return Err(IrError::shape(
                "adam_update",
                format!("value type {} differs from parameter {ty}", b.ty(other)),
            ));
        }
    }
    // m' = b1 m + (1-b1) g
    let m_scaled = b.binary_scalar(BinaryOp::Mul, m, cfg.beta1)?;
    let g_scaled = b.binary_scalar(BinaryOp::Mul, g, 1.0 - cfg.beta1)?;
    let new_m = b.add(m_scaled, g_scaled)?;
    // v' = b2 v + (1-b2) g²
    let g_sq = b.mul(g, g)?;
    let v_scaled = b.binary_scalar(BinaryOp::Mul, v, cfg.beta2)?;
    let g_sq_scaled = b.binary_scalar(BinaryOp::Mul, g_sq, 1.0 - cfg.beta2)?;
    let new_v = b.add(v_scaled, g_sq_scaled)?;
    // Bias-corrected update.
    let m_corr = 1.0 - cfg.beta1.powi(cfg.step as i32);
    let v_corr = 1.0 - cfg.beta2.powi(cfg.step as i32);
    let m_hat = b.binary_scalar(BinaryOp::Div, new_m, m_corr)?;
    let v_hat = b.binary_scalar(BinaryOp::Div, new_v, v_corr)?;
    let denom0 = b.sqrt(v_hat)?;
    let denom = b.binary_scalar(BinaryOp::Add, denom0, cfg.eps)?;
    let step_dir = b.div(m_hat, denom)?;
    let update = b.binary_scalar(BinaryOp::Mul, step_dir, cfg.lr)?;
    let new_p = b.sub(p, update)?;
    Ok((new_p, new_m, new_v))
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::{interp, Literal, TensorType};

    #[test]
    fn adam_moves_parameter_against_gradient() {
        let mut b = FuncBuilder::new("adam");
        let ty = TensorType::f32([2]);
        let p = b.param("p", ty.clone());
        let g = b.param("g", ty.clone());
        let m = b.param("m", ty.clone());
        let v = b.param("v", ty.clone());
        let cfg = AdamConfig::default();
        let (np, nm, nv) = adam_update(&mut b, p, g, m, v, &cfg).unwrap();
        let f = b.build([np, nm, nv]).unwrap();
        let out = interp::interpret(
            &f,
            &[
                Literal::from_f32(vec![1.0, -1.0], [2]).unwrap(),
                Literal::from_f32(vec![2.0, -2.0], [2]).unwrap(),
                Literal::zeros(&ty),
                Literal::zeros(&ty),
            ],
        )
        .unwrap();
        let new_p = out[0].as_f32().unwrap();
        // Positive gradient decreases the parameter and vice versa; with
        // zero moments and step 1 the update is ±lr (up to eps).
        assert!(new_p[0] < 1.0 && (1.0 - new_p[0] - cfg.lr).abs() < 1e-4);
        assert!(new_p[1] > -1.0);
        // Moments moved toward the gradient statistics.
        assert!(out[1].as_f32().unwrap()[0] > 0.0);
        assert!(out[2].as_f32().unwrap()[0] > 0.0);
    }

    #[test]
    fn adam_rejects_mismatched_types() {
        let mut b = FuncBuilder::new("adam");
        let p = b.param("p", TensorType::f32([2]));
        let g = b.param("g", TensorType::f32([3]));
        let m = b.param("m", TensorType::f32([2]));
        let v = b.param("v", TensorType::f32([2]));
        assert!(adam_update(&mut b, p, g, m, v, &AdamConfig::default()).is_err());
    }
}
