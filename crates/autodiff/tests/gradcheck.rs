//! Finite-difference gradient checking for the VJP rules.
//!
//! Each case builds a scalar-loss function, differentiates it with
//! `backward`, and compares the analytic gradient against central
//! differences computed with the reference interpreter.

use partir_autodiff::backward;
use partir_ir::{
    interp::interpret, BinaryOp, ConvDims, DotDims, FuncBuilder, IrError, Literal, TensorType,
    UnaryOp, ValueId,
};

/// Builds `loss = f(params…)`, returns (func with results [loss, grads…]).
fn build_with_grads(
    param_tys: &[TensorType],
    f: impl FnOnce(&mut FuncBuilder, &[ValueId]) -> Result<ValueId, IrError>,
) -> partir_ir::Func {
    let mut b = FuncBuilder::new("gradcheck");
    let params: Vec<ValueId> = param_tys
        .iter()
        .enumerate()
        .map(|(i, ty)| b.param(format!("p{i}"), ty.clone()))
        .collect();
    let loss = f(&mut b, &params).expect("forward build");
    let grads = backward(&mut b, loss, &params).expect("backward build");
    let mut results = vec![loss];
    results.extend(grads);
    let func = b.build(results).expect("build");
    partir_ir::verify::verify_func(&func, None).expect("verify");
    func
}

/// Pseudo-random but deterministic inputs in a well-conditioned range.
fn test_input(ty: &TensorType, salt: u64) -> Literal {
    let n = ty.shape.num_elements();
    let mut state = salt.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(12345);
    let data: Vec<f32> = (0..n)
        .map(|_| {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            // Map to (0.1, 1.1) to keep log/div/sqrt well behaved.
            0.1 + ((state >> 33) as f32 / (u32::MAX >> 1) as f32).fract()
        })
        .collect();
    Literal::from_f32(data, ty.shape.clone()).unwrap()
}

fn check_gradients(
    param_tys: &[TensorType],
    f: impl FnOnce(&mut FuncBuilder, &[ValueId]) -> Result<ValueId, IrError>,
    tol: f32,
) {
    let func = build_with_grads(param_tys, f);
    let inputs: Vec<Literal> = param_tys
        .iter()
        .enumerate()
        .map(|(i, ty)| test_input(ty, i as u64 + 1))
        .collect();
    let outputs = interpret(&func, &inputs).expect("interpret");
    let eps = 1e-3f32;
    for (pi, ty) in param_tys.iter().enumerate() {
        let analytic = outputs[1 + pi].as_f32().unwrap().to_vec();
        #[allow(clippy::needless_range_loop)] // e also indexes the inputs
        for e in 0..ty.shape.num_elements() {
            let mut plus = inputs.clone();
            plus[pi].as_f32_mut().unwrap()[e] += eps;
            let mut minus = inputs.clone();
            minus[pi].as_f32_mut().unwrap()[e] -= eps;
            let lp = interpret(&func, &plus).unwrap()[0].as_f32().unwrap()[0];
            let lm = interpret(&func, &minus).unwrap()[0].as_f32().unwrap()[0];
            let numeric = (lp - lm) / (2.0 * eps);
            let diff = (analytic[e] - numeric).abs();
            let scale = 1.0 + analytic[e].abs().max(numeric.abs());
            assert!(
                diff / scale < tol,
                "param {pi} element {e}: analytic {} vs numeric {numeric}",
                analytic[e]
            );
        }
    }
}

fn t(dims: &[usize]) -> TensorType {
    TensorType::f32(dims.to_vec())
}

#[test]
fn grad_of_elementwise_unaries() {
    for u in [
        UnaryOp::Neg,
        UnaryOp::Exp,
        UnaryOp::Log,
        UnaryOp::Tanh,
        UnaryOp::Sqrt,
        UnaryOp::Rsqrt,
        UnaryOp::Logistic,
        UnaryOp::Sin,
        UnaryOp::Cos,
    ] {
        check_gradients(
            &[t(&[3])],
            |b, p| {
                let y = b.unary(u, p[0])?;
                b.reduce_sum(y, vec![0])
            },
            2e-2,
        );
    }
}

#[test]
fn grad_of_elementwise_binaries() {
    for op in [
        BinaryOp::Add,
        BinaryOp::Sub,
        BinaryOp::Mul,
        BinaryOp::Div,
        BinaryOp::Max,
        BinaryOp::Min,
        BinaryOp::Pow,
    ] {
        check_gradients(
            &[t(&[4]), t(&[4])],
            |b, p| {
                let y = b.binary(op, p[0], p[1])?;
                let sq = b.mul(y, y)?;
                b.reduce_sum(sq, vec![0])
            },
            2e-2,
        );
    }
}

#[test]
fn grad_of_matmul_both_sides() {
    check_gradients(
        &[t(&[3, 4]), t(&[4, 2])],
        |b, p| {
            let y = b.matmul(p[0], p[1])?;
            let sq = b.mul(y, y)?;
            b.reduce_sum(sq, vec![0, 1])
        },
        2e-2,
    );
}

#[test]
fn grad_of_batched_dot_with_free_dims() {
    // Attention-like: [B, H, T, D] x [B, H, D, S].
    check_gradients(
        &[t(&[2, 2, 3, 4]), t(&[2, 2, 4, 3])],
        |b, p| {
            let y = b.dot(
                p[0],
                p[1],
                DotDims {
                    lhs_batch: vec![0, 1],
                    rhs_batch: vec![0, 1],
                    lhs_contract: vec![3],
                    rhs_contract: vec![2],
                },
            )?;
            let sq = b.mul(y, y)?;
            b.reduce_sum(sq, vec![0, 1, 2, 3])
        },
        2e-2,
    );
}

#[test]
fn grad_of_dot_with_contracting_dim_zero() {
    // dw-style dot: contract over dim 0 of both (x^T @ dy shape).
    check_gradients(
        &[t(&[5, 3]), t(&[5, 2])],
        |b, p| {
            let y = b.dot(
                p[0],
                p[1],
                DotDims {
                    lhs_batch: vec![],
                    rhs_batch: vec![],
                    lhs_contract: vec![0],
                    rhs_contract: vec![0],
                },
            )?;
            let sq = b.mul(y, y)?;
            b.reduce_sum(sq, vec![0, 1])
        },
        2e-2,
    );
}

#[test]
fn grad_of_transpose_reshape_broadcast() {
    check_gradients(
        &[t(&[2, 3])],
        |b, p| {
            let tr = b.transpose(p[0], vec![1, 0])?;
            let rs = b.reshape(tr, [6])?;
            let sq = b.mul(rs, rs)?;
            b.reduce_sum(sq, vec![0])
        },
        2e-2,
    );
    check_gradients(
        &[t(&[3])],
        |b, p| {
            let bc = b.broadcast_in_dim(p[0], [2, 3], vec![1])?;
            let sq = b.mul(bc, bc)?;
            b.reduce_sum(sq, vec![0, 1])
        },
        2e-2,
    );
}

#[test]
fn grad_of_reduce_max() {
    check_gradients(
        &[t(&[2, 4])],
        |b, p| {
            let m = b.reduce_max(p[0], vec![1])?;
            let sq = b.mul(m, m)?;
            b.reduce_sum(sq, vec![0])
        },
        2e-2,
    );
}

#[test]
fn grad_of_slice_pad_concat() {
    check_gradients(
        &[t(&[6])],
        |b, p| {
            let head = b.slice(p[0], vec![0], vec![3])?;
            let tail = b.slice(p[0], vec![3], vec![6])?;
            let sum = b.add(head, tail)?;
            let zero = b.const_f32(0.0)?;
            let padded = b.pad(sum, zero, vec![1], vec![1])?;
            let cat = b.concatenate(&[padded, sum], 0)?;
            let sq = b.mul(cat, cat)?;
            b.reduce_sum(sq, vec![0])
        },
        2e-2,
    );
}

#[test]
fn grad_of_gather_scatter() {
    check_gradients(
        &[t(&[5, 2])],
        |b, p| {
            let idx = b.constant(Literal::from_i32(vec![1, 1, 4], [3]).unwrap())?;
            let g = b.gather(p[0], idx, 0)?;
            let s = b.scatter_add(g, idx, 0, 5)?;
            let sq = b.mul(s, s)?;
            b.reduce_sum(sq, vec![0, 1])
        },
        2e-2,
    );
}

#[test]
fn grad_of_convolution() {
    check_gradients(
        &[t(&[1, 2, 5, 5]), t(&[3, 2, 3, 3])],
        |b, p| {
            let y = b.convolution(
                p[0],
                p[1],
                ConvDims {
                    strides: (2, 2),
                    padding: (1, 1),
                },
            )?;
            let sq = b.mul(y, y)?;
            b.reduce_sum(sq, vec![0, 1, 2, 3])
        },
        3e-2,
    );
}

#[test]
fn grad_of_select_and_softmax_composition() {
    check_gradients(
        &[t(&[2, 3])],
        |b, p| {
            // Numerically-stable softmax then sum of squares.
            let mx = b.reduce_max(p[0], vec![1])?;
            let mxb = b.broadcast_in_dim(mx, [2, 3], vec![0])?;
            let shifted = b.sub(p[0], mxb)?;
            let e = b.exp(shifted)?;
            let denom = b.reduce_sum(e, vec![1])?;
            let denb = b.broadcast_in_dim(denom, [2, 3], vec![0])?;
            let sm = b.div(e, denb)?;
            let sq = b.mul(sm, sm)?;
            b.reduce_sum(sq, vec![0, 1])
        },
        2e-2,
    );
}

#[test]
fn grad_of_mlp_loss_end_to_end() {
    // A complete two-layer MLP with MSE loss — the composition the
    // model-zoo training steps are built from. Checks every parameter's
    // gradient (input, weights, biases, targets) against central
    // differences, covering the dot_general, reduce, broadcast and
    // elementwise (tanh, sub, mul) VJP rules interacting in one graph.
    check_gradients(
        &[
            t(&[2, 3]), // x
            t(&[3, 4]), // W1
            t(&[4]),    // b1
            t(&[4, 2]), // W2
            t(&[2]),    // b2
            t(&[2, 2]), // target
        ],
        |b, p| {
            let h = b.matmul(p[0], p[1])?;
            let bias1 = b.broadcast_in_dim(p[2], [2, 4], vec![1])?;
            let pre = b.add(h, bias1)?;
            let act = b.unary(UnaryOp::Tanh, pre)?;
            let out = b.matmul(act, p[3])?;
            let bias2 = b.broadcast_in_dim(p[4], [2, 2], vec![1])?;
            let pred = b.add(out, bias2)?;
            let err = b.sub(pred, p[5])?;
            let sq = b.mul(err, err)?;
            let total = b.reduce_sum(sq, vec![0, 1])?;
            // Mean over the 4 output elements.
            let quarter = b.const_f32(0.25)?;
            b.mul(total, quarter)
        },
        2e-2,
    );
}

#[test]
fn unused_parameter_gets_zero_gradient() {
    let func = build_with_grads(&[t(&[2]), t(&[2])], |b, p| {
        let sq = b.mul(p[0], p[0])?;
        b.reduce_sum(sq, vec![0])
    });
    let out = interpret(
        &func,
        &[
            Literal::from_f32(vec![1.0, 2.0], [2]).unwrap(),
            Literal::from_f32(vec![5.0, 5.0], [2]).unwrap(),
        ],
    )
    .unwrap();
    assert_eq!(out[2].as_f32().unwrap(), &[0.0, 0.0]);
}

#[test]
fn backward_requires_scalar_loss() {
    let mut b = FuncBuilder::new("bad");
    let x = b.param("x", t(&[2]));
    let err = backward(&mut b, x, &[x]).unwrap_err();
    assert!(matches!(err, IrError::Invalid(_)));
}
