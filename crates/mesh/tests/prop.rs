//! Property-based tests for mesh coordinate arithmetic and collective
//! grouping.

use partir_mesh::{Axis, Mesh};
use partir_prng::{propcheck::check, Rng};

fn gen_mesh(rng: &mut Rng) -> Mesh {
    let rank = rng.gen_range_in(1, 4);
    let axes: Vec<(String, usize)> = (0..rank)
        .map(|i| (format!("ax{i}"), rng.gen_range_in(1, 5)))
        .collect();
    Mesh::new(axes).expect("valid mesh")
}

#[test]
fn coordinates_roundtrip() {
    check("coordinates roundtrip", 64, |rng| {
        let mesh = gen_mesh(rng);
        for d in 0..mesh.num_devices() {
            let coords = mesh.coordinates(d);
            if coords.len() != mesh.rank() {
                return Err(format!("rank mismatch for device {d}"));
            }
            if mesh.device_id(&coords) != d {
                return Err(format!("device {d} does not roundtrip"));
            }
            for (c, (_, size)) in coords.iter().zip(mesh.axes()) {
                if c >= size {
                    return Err(format!("coordinate {c} out of range {size}"));
                }
            }
        }
        Ok(())
    });
}

#[test]
fn collective_groups_partition_devices() {
    check("collective groups partition devices", 64, |rng| {
        let mesh = gen_mesh(rng);
        let axes: Vec<Axis> = mesh.axis_names().cloned().collect();
        let axis = rng.choose(&axes).clone();
        let groups = mesh.collective_groups(std::slice::from_ref(&axis)).unwrap();
        // Groups partition all devices.
        let mut seen = std::collections::HashSet::new();
        for group in &groups {
            if group.len() != mesh.axis_size(&axis).unwrap() {
                return Err(format!("group size {} wrong", group.len()));
            }
            for &d in group {
                if !seen.insert(d) {
                    return Err(format!("device {d} in two groups"));
                }
            }
            // Members differ only along the collective axis.
            let idx = mesh.axis_index(&axis).unwrap();
            let base = mesh.coordinates(group[0]);
            for (pos, &d) in group.iter().enumerate() {
                let coords = mesh.coordinates(d);
                if coords[idx] != pos {
                    return Err(format!("group not ordered by coordinate at {d}"));
                }
                for (i, (&c, &b)) in coords.iter().zip(&base).enumerate() {
                    if i != idx && c != b {
                        return Err(format!("device {d} differs off-axis"));
                    }
                }
            }
        }
        if seen.len() != mesh.num_devices() {
            return Err("groups do not cover the mesh".to_string());
        }
        Ok(())
    });
}

#[test]
fn groups_over_all_axes_are_one_group() {
    check("groups over all axes are one group", 64, |rng| {
        let mesh = gen_mesh(rng);
        let axes: Vec<Axis> = mesh.axis_names().cloned().collect();
        let groups = mesh.collective_groups(&axes).unwrap();
        if groups.len() != 1 || groups[0].len() != mesh.num_devices() {
            return Err(format!("expected one full group, got {groups:?}"));
        }
        Ok(())
    });
}
