//! Property-based tests for mesh coordinate arithmetic and collective
//! grouping.

use proptest::prelude::*;

use partir_mesh::{Axis, Mesh};

fn mesh_strategy() -> impl Strategy<Value = Mesh> {
    prop::collection::vec(1usize..5, 1..4).prop_map(|sizes| {
        let axes: Vec<(String, usize)> = sizes
            .into_iter()
            .enumerate()
            .map(|(i, s)| (format!("ax{i}"), s))
            .collect();
        Mesh::new(axes).expect("valid mesh")
    })
}

proptest! {
    #[test]
    fn coordinates_roundtrip(mesh in mesh_strategy()) {
        for d in 0..mesh.num_devices() {
            let coords = mesh.coordinates(d);
            prop_assert_eq!(coords.len(), mesh.rank());
            prop_assert_eq!(mesh.device_id(&coords), d);
            for (c, (_, size)) in coords.iter().zip(mesh.axes()) {
                prop_assert!(c < size);
            }
        }
    }

    #[test]
    fn collective_groups_partition_devices(
        mesh in mesh_strategy(),
        pick in any::<prop::sample::Index>(),
    ) {
        let axes: Vec<Axis> = mesh.axis_names().cloned().collect();
        let axis = axes[pick.index(axes.len())].clone();
        let groups = mesh.collective_groups(std::slice::from_ref(&axis)).unwrap();
        // Groups partition all devices.
        let mut seen = std::collections::HashSet::new();
        for group in &groups {
            prop_assert_eq!(group.len(), mesh.axis_size(&axis).unwrap());
            for &d in group {
                prop_assert!(seen.insert(d), "device {} in two groups", d);
            }
            // Members differ only along the collective axis.
            let idx = mesh.axis_index(&axis).unwrap();
            let base = mesh.coordinates(group[0]);
            for (pos, &d) in group.iter().enumerate() {
                let coords = mesh.coordinates(d);
                prop_assert_eq!(coords[idx], pos, "ordered by coordinate");
                for (i, (&c, &b)) in coords.iter().zip(&base).enumerate() {
                    if i != idx {
                        prop_assert_eq!(c, b);
                    }
                }
            }
        }
        prop_assert_eq!(seen.len(), mesh.num_devices());
    }

    #[test]
    fn groups_over_all_axes_are_one_group(mesh in mesh_strategy()) {
        let axes: Vec<Axis> = mesh.axis_names().cloned().collect();
        let groups = mesh.collective_groups(&axes).unwrap();
        prop_assert_eq!(groups.len(), 1);
        prop_assert_eq!(groups[0].len(), mesh.num_devices());
    }
}
