use std::fmt;
use std::sync::Arc;

/// A named mesh axis, such as `"batch"` or `"model"`.
///
/// Axes are cheap to clone (reference-counted) and compare by name.
///
/// # Examples
///
/// ```
/// use partir_mesh::Axis;
///
/// let a = Axis::new("batch");
/// let b: Axis = "batch".into();
/// assert_eq!(a, b);
/// assert_eq!(a.name(), "batch");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Axis(Arc<str>);

impl Axis {
    /// Creates an axis with the given name.
    pub fn new(name: impl AsRef<str>) -> Self {
        Axis(Arc::from(name.as_ref()))
    }

    /// Returns the axis name.
    pub fn name(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Axis {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Axis {
    fn from(name: &str) -> Self {
        Axis::new(name)
    }
}

impl From<String> for Axis {
    fn from(name: String) -> Self {
        Axis::new(name)
    }
}

impl AsRef<str> for Axis {
    fn as_ref(&self) -> &str {
        self.name()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn axis_equality_is_by_name() {
        assert_eq!(Axis::new("x"), Axis::new("x"));
        assert_ne!(Axis::new("x"), Axis::new("y"));
    }

    #[test]
    fn axis_hashes_by_name() {
        let mut set = HashSet::new();
        set.insert(Axis::new("x"));
        assert!(set.contains(&Axis::new("x")));
        assert!(!set.contains(&Axis::new("y")));
    }

    #[test]
    fn axis_display_and_as_ref() {
        let a = Axis::new("model");
        assert_eq!(a.to_string(), "model");
        assert_eq!(a.as_ref(), "model");
    }

    #[test]
    fn axis_orders_lexicographically() {
        assert!(Axis::new("a") < Axis::new("b"));
    }
}
