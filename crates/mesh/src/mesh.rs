use std::fmt;

use crate::{Axis, MeshError};

/// Per-axis device coordinates within a [`Mesh`], in axis declaration order.
pub type Coordinates = Vec<usize>;

/// An n-dimensional logical arrangement of devices with named axes.
///
/// The axis order is significant: device ids are laid out row-major with the
/// *last* axis varying fastest, matching `jax.sharding.Mesh`.
///
/// # Examples
///
/// ```
/// use partir_mesh::Mesh;
///
/// let mesh = Mesh::new([("x", 2), ("y", 3)])?;
/// assert_eq!(mesh.num_devices(), 6);
/// assert_eq!(mesh.coordinates(4), vec![1, 1]);
/// # Ok::<(), partir_mesh::MeshError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mesh {
    axes: Vec<(Axis, usize)>,
}

impl Mesh {
    /// Creates a mesh from `(axis, size)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::Empty`] for an empty axis list,
    /// [`MeshError::DuplicateAxis`] if an axis name repeats and
    /// [`MeshError::ZeroSizedAxis`] if any size is zero.
    pub fn new<A: Into<Axis>>(
        axes: impl IntoIterator<Item = (A, usize)>,
    ) -> Result<Self, MeshError> {
        let axes: Vec<(Axis, usize)> = axes.into_iter().map(|(a, s)| (a.into(), s)).collect();
        if axes.is_empty() {
            return Err(MeshError::Empty);
        }
        for (i, (axis, size)) in axes.iter().enumerate() {
            if *size == 0 {
                return Err(MeshError::ZeroSizedAxis(axis.clone()));
            }
            if axes[..i].iter().any(|(a, _)| a == axis) {
                return Err(MeshError::DuplicateAxis(axis.clone()));
            }
        }
        Ok(Mesh { axes })
    }

    /// A single-axis mesh, convenient for tests.
    pub fn single(axis: impl Into<Axis>, size: usize) -> Result<Self, MeshError> {
        Mesh::new([(axis.into(), size)])
    }

    /// Total number of devices (product of axis sizes).
    pub fn num_devices(&self) -> usize {
        self.axes.iter().map(|(_, s)| s).product()
    }

    /// The `(axis, size)` pairs in declaration order.
    pub fn axes(&self) -> &[(Axis, usize)] {
        &self.axes
    }

    /// Iterator over axis names in declaration order.
    pub fn axis_names(&self) -> impl Iterator<Item = &Axis> {
        self.axes.iter().map(|(a, _)| a)
    }

    /// Number of axes.
    pub fn rank(&self) -> usize {
        self.axes.len()
    }

    /// Whether this mesh declares `axis`.
    pub fn contains_axis(&self, axis: &Axis) -> bool {
        self.axes.iter().any(|(a, _)| a == axis)
    }

    /// The size of `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownAxis`] if the axis is not in the mesh.
    pub fn axis_size(&self, axis: &Axis) -> Result<usize, MeshError> {
        self.axes
            .iter()
            .find(|(a, _)| a == axis)
            .map(|(_, s)| *s)
            .ok_or_else(|| MeshError::UnknownAxis(axis.clone()))
    }

    /// Index of `axis` in declaration order.
    pub fn axis_index(&self, axis: &Axis) -> Result<usize, MeshError> {
        self.axes
            .iter()
            .position(|(a, _)| a == axis)
            .ok_or_else(|| MeshError::UnknownAxis(axis.clone()))
    }

    /// Per-axis coordinates of a device id (row-major, last axis fastest).
    ///
    /// # Panics
    ///
    /// Panics if `device >= self.num_devices()`; use
    /// [`Mesh::try_coordinates`] for a fallible variant.
    pub fn coordinates(&self, device: usize) -> Coordinates {
        self.try_coordinates(device)
            .expect("device id out of range")
    }

    /// Fallible variant of [`Mesh::coordinates`].
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::DeviceOutOfRange`] for invalid device ids.
    pub fn try_coordinates(&self, device: usize) -> Result<Coordinates, MeshError> {
        let n = self.num_devices();
        if device >= n {
            return Err(MeshError::DeviceOutOfRange {
                device,
                num_devices: n,
            });
        }
        let mut rem = device;
        let mut coords = vec![0; self.axes.len()];
        for (i, (_, size)) in self.axes.iter().enumerate().rev() {
            coords[i] = rem % size;
            rem /= size;
        }
        Ok(coords)
    }

    /// The device id for a coordinate tuple (inverse of [`Mesh::coordinates`]).
    ///
    /// # Panics
    ///
    /// Panics if the coordinate rank or any coordinate is out of range.
    pub fn device_id(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.axes.len(), "coordinate rank mismatch");
        let mut id = 0;
        for ((_, size), &c) in self.axes.iter().zip(coords) {
            assert!(c < *size, "coordinate out of range");
            id = id * size + c;
        }
        id
    }

    /// The coordinate of `device` along `axis`.
    pub fn coordinate_along(&self, device: usize, axis: &Axis) -> Result<usize, MeshError> {
        let idx = self.axis_index(axis)?;
        Ok(self.try_coordinates(device)?[idx])
    }

    /// Groups of device ids that communicate in a collective over `axes`:
    /// devices sharing all coordinates *except* those along `axes`.
    ///
    /// Each group is returned ordered by the devices' coordinates along
    /// `axes` (first axis outermost), which defines shard order for
    /// collectives that concatenate data.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownAxis`] if any axis is not in the mesh.
    pub fn collective_groups(&self, axes: &[Axis]) -> Result<Vec<Vec<usize>>, MeshError> {
        let mut axis_indices = Vec::with_capacity(axes.len());
        for a in axes {
            axis_indices.push(self.axis_index(a)?);
        }
        let n = self.num_devices();
        let group_size: usize = axis_indices.iter().map(|&i| self.axes[i].1).product();
        let mut groups: Vec<Vec<usize>> = Vec::with_capacity(n / group_size.max(1));
        let mut key_to_group: std::collections::HashMap<Vec<usize>, usize> =
            std::collections::HashMap::new();
        // Collect devices keyed by their non-axis coordinates; sort within a
        // group by the coordinates along `axes` in the given axis order.
        let mut members: Vec<(Vec<usize>, Vec<usize>, usize)> = Vec::with_capacity(n);
        for d in 0..n {
            let coords = self.try_coordinates(d)?;
            let key: Vec<usize> = coords
                .iter()
                .enumerate()
                .filter(|(i, _)| !axis_indices.contains(i))
                .map(|(_, &c)| c)
                .collect();
            let pos: Vec<usize> = axis_indices.iter().map(|&i| coords[i]).collect();
            members.push((key, pos, d));
        }
        members.sort();
        for (key, _, d) in members {
            let gi = *key_to_group.entry(key).or_insert_with(|| {
                groups.push(Vec::with_capacity(group_size));
                groups.len() - 1
            });
            groups[gi].push(d);
        }
        Ok(groups)
    }

    /// The devices sharing all coordinates with `device` except along
    /// `axis`, ordered by their coordinate on `axis` — the group `device`
    /// communicates with in a single-axis collective.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownAxis`] or [`MeshError::DeviceOutOfRange`].
    pub fn axis_group(&self, device: usize, axis: &Axis) -> Result<Vec<usize>, MeshError> {
        let idx = self.axis_index(axis)?;
        let k = self.axes[idx].1;
        let coords = self.try_coordinates(device)?;
        let mut peers = Vec::with_capacity(k);
        for c in 0..k {
            let mut peer = coords.clone();
            peer[idx] = c;
            peers.push(self.device_id(&peer));
        }
        Ok(peers)
    }

    /// The ring neighbours of `device` along `axis`: `(prev, next)` where
    /// `next` has coordinate `(c + 1) mod k` and `prev` has `(c - 1) mod k`.
    ///
    /// Ring collective algorithms send to `next` and receive from `prev`.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownAxis`] or [`MeshError::DeviceOutOfRange`].
    pub fn ring_neighbors(&self, device: usize, axis: &Axis) -> Result<(usize, usize), MeshError> {
        let idx = self.axis_index(axis)?;
        let k = self.axes[idx].1;
        let mut coords = self.try_coordinates(device)?;
        let c = coords[idx];
        coords[idx] = (c + k - 1) % k;
        let prev = self.device_id(&coords);
        coords[idx] = (c + 1) % k;
        let next = self.device_id(&coords);
        Ok((prev, next))
    }
}

impl fmt::Display for Mesh {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, (a, s)) in self.axes.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "\"{a}\": {s}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh2d() -> Mesh {
        Mesh::new([("x", 2), ("y", 4)]).unwrap()
    }

    #[test]
    fn rejects_bad_constructions() {
        assert_eq!(
            Mesh::new(Vec::<(&str, usize)>::new()).unwrap_err(),
            MeshError::Empty
        );
        assert_eq!(
            Mesh::new([("x", 2), ("x", 4)]).unwrap_err(),
            MeshError::DuplicateAxis(Axis::new("x"))
        );
        assert_eq!(
            Mesh::new([("x", 0)]).unwrap_err(),
            MeshError::ZeroSizedAxis(Axis::new("x"))
        );
    }

    #[test]
    fn device_count_and_axis_queries() {
        let m = mesh2d();
        assert_eq!(m.num_devices(), 8);
        assert_eq!(m.rank(), 2);
        assert_eq!(m.axis_size(&"y".into()).unwrap(), 4);
        assert!(m.contains_axis(&"x".into()));
        assert!(!m.contains_axis(&"z".into()));
        assert_eq!(
            m.axis_size(&"z".into()).unwrap_err(),
            MeshError::UnknownAxis(Axis::new("z"))
        );
    }

    #[test]
    fn coordinates_roundtrip() {
        let m = mesh2d();
        for d in 0..m.num_devices() {
            let c = m.coordinates(d);
            assert_eq!(m.device_id(&c), d);
        }
        assert_eq!(m.coordinates(0), vec![0, 0]);
        assert_eq!(m.coordinates(7), vec![1, 3]);
        assert_eq!(m.coordinates(5), vec![1, 1]);
    }

    #[test]
    fn coordinates_out_of_range() {
        let m = mesh2d();
        assert_eq!(
            m.try_coordinates(8).unwrap_err(),
            MeshError::DeviceOutOfRange {
                device: 8,
                num_devices: 8
            }
        );
    }

    #[test]
    fn collective_groups_single_axis() {
        let m = mesh2d();
        // Groups over "y": devices sharing x coordinate.
        let groups = m.collective_groups(&["y".into()]).unwrap();
        assert_eq!(groups, vec![vec![0, 1, 2, 3], vec![4, 5, 6, 7]]);
        // Groups over "x": devices sharing y coordinate.
        let groups = m.collective_groups(&["x".into()]).unwrap();
        assert_eq!(groups, vec![vec![0, 4], vec![1, 5], vec![2, 6], vec![3, 7]]);
    }

    #[test]
    fn collective_groups_all_axes() {
        let m = mesh2d();
        let groups = m.collective_groups(&["x".into(), "y".into()]).unwrap();
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 8);
    }

    #[test]
    fn collective_group_ordering_follows_axis_order() {
        let m = mesh2d();
        // Over ["y", "x"] each group should be ordered y-major.
        let groups = m.collective_groups(&["y".into(), "x".into()]).unwrap();
        assert_eq!(groups[0], vec![0, 4, 1, 5, 2, 6, 3, 7]);
    }

    #[test]
    fn display_formats_like_paper() {
        assert_eq!(mesh2d().to_string(), "{\"x\": 2, \"y\": 4}");
    }

    #[test]
    fn axis_group_matches_collective_groups() {
        let m = mesh2d();
        for d in 0..m.num_devices() {
            let group = m.axis_group(d, &"y".into()).unwrap();
            assert!(group.contains(&d));
            let full = m.collective_groups(&["y".into()]).unwrap();
            assert!(full.contains(&group));
        }
        assert!(m.axis_group(0, &"z".into()).is_err());
        assert!(m.axis_group(99, &"x".into()).is_err());
    }

    #[test]
    fn ring_neighbors_wrap_around() {
        let m = mesh2d();
        // Along "y" (size 4), device 3 has coordinate 3: next wraps to 0.
        assert_eq!(m.ring_neighbors(3, &"y".into()).unwrap(), (2, 0));
        assert_eq!(m.ring_neighbors(0, &"y".into()).unwrap(), (3, 1));
        // Along "x" (size 2), prev == next.
        assert_eq!(m.ring_neighbors(0, &"x".into()).unwrap(), (4, 4));
    }

    #[test]
    fn coordinate_along_axis() {
        let m = mesh2d();
        assert_eq!(m.coordinate_along(6, &"x".into()).unwrap(), 1);
        assert_eq!(m.coordinate_along(6, &"y".into()).unwrap(), 2);
    }
}
