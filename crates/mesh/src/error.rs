use std::error::Error;
use std::fmt;

use crate::Axis;

/// Errors produced when constructing or querying a [`crate::Mesh`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MeshError {
    /// The mesh was constructed with no axes.
    Empty,
    /// An axis appeared more than once in the mesh definition.
    DuplicateAxis(Axis),
    /// An axis was declared with size zero.
    ZeroSizedAxis(Axis),
    /// The queried axis does not exist in the mesh.
    UnknownAxis(Axis),
    /// A device id was out of range for the mesh.
    DeviceOutOfRange {
        /// The offending device id.
        device: usize,
        /// The number of devices in the mesh.
        num_devices: usize,
    },
}

impl fmt::Display for MeshError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MeshError::Empty => write!(f, "mesh must have at least one axis"),
            MeshError::DuplicateAxis(a) => write!(f, "duplicate mesh axis {a:?}"),
            MeshError::ZeroSizedAxis(a) => write!(f, "mesh axis {a:?} has size zero"),
            MeshError::UnknownAxis(a) => write!(f, "unknown mesh axis {a:?}"),
            MeshError::DeviceOutOfRange {
                device,
                num_devices,
            } => write!(
                f,
                "device id {device} out of range for mesh with {num_devices} devices"
            ),
        }
    }
}

impl Error for MeshError {}
