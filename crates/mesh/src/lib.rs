//! Device meshes, axes and hardware descriptions for PartIR-rs.
//!
//! A [`Mesh`] is an n-dimensional logical view of a set of devices with
//! *named axes* (paper §2.1), e.g. `{"B": 4, "M": 2}`. Partitioning actions
//! and SPMD collectives refer to mesh axes by name, never to raw device ids,
//! which keeps the IR encoding independent of the total device count.
//!
//! [`DeviceSpec`] and [`Topology`] describe the simulated hardware
//! (paper Appendix A.2): peak FLOPS, HBM capacity and per-axis interconnect
//! bandwidth. They drive the analytical simulator in `partir-sim`.
//!
//! # Examples
//!
//! ```
//! use partir_mesh::Mesh;
//!
//! let mesh = Mesh::new([("B", 4), ("M", 2)])?;
//! assert_eq!(mesh.num_devices(), 8);
//! assert_eq!(mesh.axis_size(&"B".into())?, 4);
//! let coords = mesh.coordinates(5);
//! assert_eq!(mesh.device_id(&coords), 5);
//! # Ok::<(), partir_mesh::MeshError>(())
//! ```

#![forbid(unsafe_code)]

mod axis;
mod error;
mod hardware;
mod mesh;

pub use axis::Axis;
pub use error::MeshError;
pub use hardware::{DeviceKind, DeviceSpec, HardwareConfig, Topology};
pub use mesh::{Coordinates, Mesh};
