use std::fmt;

use crate::{Axis, Mesh, MeshError};

/// The family of accelerator a [`DeviceSpec`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum DeviceKind {
    /// Google TPU.
    Tpu,
    /// Nvidia GPU.
    Gpu,
    /// Host CPU (used for functional testing).
    Cpu,
}

impl fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceKind::Tpu => f.write_str("TPU"),
            DeviceKind::Gpu => f.write_str("GPU"),
            DeviceKind::Cpu => f.write_str("CPU"),
        }
    }
}

/// High-level specification of one accelerator device.
///
/// Only coarse characteristics are needed by the analytical simulator
/// (paper Appendix A.5): peak FLOPS, memory capacity and memory bandwidth.
///
/// # Examples
///
/// ```
/// use partir_mesh::DeviceSpec;
///
/// let tpu = DeviceSpec::tpu_v3();
/// assert!(tpu.peak_flops_f32 > 1e12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Human readable name, e.g. `"TPUv3"`.
    pub name: String,
    /// Device family.
    pub kind: DeviceKind,
    /// Peak float32 FLOPS per second.
    pub peak_flops_f32: f64,
    /// Peak reduced-precision (bf16/f16) FLOPS per second.
    pub peak_flops_bf16: f64,
    /// High-bandwidth memory capacity in bytes.
    pub hbm_bytes: u64,
    /// HBM bandwidth in bytes per second.
    pub hbm_bandwidth: f64,
}

impl DeviceSpec {
    /// TPUv3 core: 61.5 TFLOPS f32 (123 TFLOPS bf16), 16 GiB HBM
    /// (paper Appendix A.2).
    pub fn tpu_v3() -> Self {
        DeviceSpec {
            name: "TPUv3".to_string(),
            kind: DeviceKind::Tpu,
            peak_flops_f32: 61.5e12,
            peak_flops_bf16: 123.0e12,
            hbm_bytes: 16 * (1 << 30),
            hbm_bandwidth: 900.0e9,
        }
    }

    /// Nvidia A100 40 GB: 156 TFLOPS f32 (TF32), 312 TFLOPS bf16
    /// (paper Appendix A.2).
    pub fn a100_40gb() -> Self {
        DeviceSpec {
            name: "A100-40GB".to_string(),
            kind: DeviceKind::Gpu,
            peak_flops_f32: 156.0e12,
            peak_flops_bf16: 312.0e12,
            hbm_bytes: 40 * (1 << 30),
            hbm_bandwidth: 1555.0e9,
        }
    }

    /// A small fictional device used by functional tests so that
    /// memory-limit code paths can be exercised with tiny tensors.
    pub fn test_device(hbm_bytes: u64) -> Self {
        DeviceSpec {
            name: "TestDev".to_string(),
            kind: DeviceKind::Cpu,
            peak_flops_f32: 1.0e12,
            peak_flops_bf16: 2.0e12,
            hbm_bytes,
            hbm_bandwidth: 100.0e9,
        }
    }
}

/// Per-axis interconnect description for a mesh.
///
/// Mesh axes usually reflect the system's communication topology
/// (paper §2.1): e.g. a fast intra-server interconnect along one axis and
/// slower Ethernet across servers along another.
#[derive(Debug, Clone, PartialEq)]
pub struct Topology {
    /// `(axis, bandwidth bytes/s, latency seconds)` per mesh axis.
    links: Vec<(Axis, f64, f64)>,
}

impl Topology {
    /// Creates a topology from `(axis, bandwidth, latency)` triples.
    pub fn new<A: Into<Axis>>(links: impl IntoIterator<Item = (A, f64, f64)>) -> Self {
        Topology {
            links: links
                .into_iter()
                .map(|(a, bw, lat)| (a.into(), bw, lat))
                .collect(),
        }
    }

    /// A uniform topology giving every axis of `mesh` the same link.
    pub fn uniform(mesh: &Mesh, bandwidth: f64, latency: f64) -> Self {
        Topology {
            links: mesh
                .axis_names()
                .map(|a| (a.clone(), bandwidth, latency))
                .collect(),
        }
    }

    /// Link bandwidth (bytes/s) along `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownAxis`] when the axis has no link entry.
    pub fn bandwidth(&self, axis: &Axis) -> Result<f64, MeshError> {
        self.links
            .iter()
            .find(|(a, _, _)| a == axis)
            .map(|(_, bw, _)| *bw)
            .ok_or_else(|| MeshError::UnknownAxis(axis.clone()))
    }

    /// Link latency (seconds) along `axis`.
    ///
    /// # Errors
    ///
    /// Returns [`MeshError::UnknownAxis`] when the axis has no link entry.
    pub fn latency(&self, axis: &Axis) -> Result<f64, MeshError> {
        self.links
            .iter()
            .find(|(a, _, _)| a == axis)
            .map(|(_, _, lat)| *lat)
            .ok_or_else(|| MeshError::UnknownAxis(axis.clone()))
    }
}

/// A complete simulated machine: mesh + device spec + interconnect.
///
/// # Examples
///
/// ```
/// use partir_mesh::{HardwareConfig, Mesh};
///
/// let mesh = Mesh::new([("B", 16), ("M", 2)])?;
/// let hw = HardwareConfig::tpu_v3_pod(mesh);
/// assert_eq!(hw.mesh.num_devices(), 32);
/// # Ok::<(), partir_mesh::MeshError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct HardwareConfig {
    /// Logical device arrangement.
    pub mesh: Mesh,
    /// Per-device characteristics.
    pub device: DeviceSpec,
    /// Interconnect along each mesh axis.
    pub topology: Topology,
}

impl HardwareConfig {
    /// TPUv3 pod slice: 70 GB/s ICI links on every axis (paper A.2).
    pub fn tpu_v3_pod(mesh: Mesh) -> Self {
        let topology = Topology::uniform(&mesh, 70.0e9, 1.0e-6);
        HardwareConfig {
            mesh,
            device: DeviceSpec::tpu_v3(),
            topology,
        }
    }

    /// A100 cluster: 600 GB/s NVLink on the innermost (last) axis,
    /// 25 GB/s Ethernet on outer axes (paper §2.1 example).
    pub fn a100_cluster(mesh: Mesh) -> Self {
        let n = mesh.rank();
        let links: Vec<(Axis, f64, f64)> = mesh
            .axes()
            .iter()
            .enumerate()
            .map(|(i, (a, _))| {
                if i + 1 == n {
                    (a.clone(), 600.0e9, 2.0e-6)
                } else {
                    (a.clone(), 25.0e9, 10.0e-6)
                }
            })
            .collect();
        HardwareConfig {
            mesh,
            device: DeviceSpec::a100_40gb(),
            topology: Topology { links },
        }
    }

    /// A tiny test machine with `hbm_bytes` of memory per device.
    pub fn test_machine(mesh: Mesh, hbm_bytes: u64) -> Self {
        let topology = Topology::uniform(&mesh, 10.0e9, 1.0e-6);
        HardwareConfig {
            mesh,
            device: DeviceSpec::test_device(hbm_bytes),
            topology,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builtin_specs_are_sane() {
        let tpu = DeviceSpec::tpu_v3();
        assert_eq!(tpu.kind, DeviceKind::Tpu);
        assert!(tpu.peak_flops_bf16 > tpu.peak_flops_f32);
        let gpu = DeviceSpec::a100_40gb();
        assert!(gpu.hbm_bytes > tpu.hbm_bytes);
    }

    #[test]
    fn uniform_topology_covers_all_axes() {
        let mesh = Mesh::new([("a", 2), ("b", 2)]).unwrap();
        let t = Topology::uniform(&mesh, 1e9, 1e-6);
        assert_eq!(t.bandwidth(&"a".into()).unwrap(), 1e9);
        assert_eq!(t.latency(&"b".into()).unwrap(), 1e-6);
        assert!(t.bandwidth(&"c".into()).is_err());
    }

    #[test]
    fn a100_cluster_has_fast_inner_axis() {
        let mesh = Mesh::new([("hosts", 4), ("gpus", 8)]).unwrap();
        let hw = HardwareConfig::a100_cluster(mesh);
        let outer = hw.topology.bandwidth(&"hosts".into()).unwrap();
        let inner = hw.topology.bandwidth(&"gpus".into()).unwrap();
        assert!(inner > outer);
    }

    #[test]
    fn device_kind_displays() {
        assert_eq!(DeviceKind::Tpu.to_string(), "TPU");
        assert_eq!(DeviceKind::Gpu.to_string(), "GPU");
    }
}
