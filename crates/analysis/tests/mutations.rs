//! Mutation suite: known-bad programs the analyzer must flag.
//!
//! Each case seeds one specific defect — a mismatched collective order,
//! a conflicting tiling, a dropped axis, … — and asserts the analyzer
//! reports the expected rule. A control case checks the unmutated
//! program is clean, so the suite also guards against false positives.

use partir_analysis::collective::{check_deadlock_freedom, check_device_traces, device_trace};
use partir_analysis::layout::check_layouts;
use partir_analysis::{error_count, lint, sharding, Severity};
use partir_core::{Partitioning, ValueCtx};
use partir_ir::{Collective, Func, FuncBuilder, ReduceOp, TensorType, ValueId};
use partir_mesh::Mesh;

fn mesh() -> Mesh {
    Mesh::new([("B", 2), ("M", 2)]).unwrap()
}

fn ar(b: &mut FuncBuilder, x: ValueId, axis: &str, reduce: ReduceOp) -> ValueId {
    b.collective(
        Collective::AllReduce {
            axes: vec![axis.into()],
            reduce,
        },
        x,
    )
    .unwrap()
}

fn assert_rule(diags: &[partir_analysis::Diagnostic], rule: &str) {
    assert!(
        diags.iter().any(|d| d.rule == rule),
        "expected rule {rule:?}, got: {}",
        lint::render(diags)
    );
}

fn two_device_traces(fa: &Func, fb: &Func) -> Vec<Vec<partir_analysis::collective::Event>> {
    let ta = device_trace(fa);
    let tb = device_trace(fb);
    // Devices 0,1 run `fa`; 2,3 run `fb` — each "B" group mixes both.
    vec![ta.clone(), ta, tb.clone(), tb]
}

/// Control: an unmutated SPMD program produces zero errors.
#[test]
fn control_program_is_clean() {
    let mut b = FuncBuilder::with_mesh("f", mesh());
    let x = b.param("x", TensorType::f32([4, 4]));
    let y = ar(&mut b, x, "B", ReduceOp::Sum);
    let z = ar(&mut b, y, "M", ReduceOp::Sum);
    let f = b.build([z]).unwrap();
    let diags = lint::lint_device_func(&f, &mesh(), None, None);
    assert_eq!(error_count(&diags), 0, "{}", lint::render(&diags));
}

/// Mutation 1: two collectives over the same axis, reordered on half the
/// devices — the classic rendezvous-order deadlock.
#[test]
fn mutation_same_axis_order_mismatch() {
    let build = |first, second| {
        let mut b = FuncBuilder::with_mesh("f", mesh());
        let x = b.param("x", TensorType::f32([4, 4]));
        let y = ar(&mut b, x, "B", first);
        let z = ar(&mut b, y, "B", second);
        b.build([z]).unwrap()
    };
    let fa = build(ReduceOp::Sum, ReduceOp::Max);
    let fb = build(ReduceOp::Max, ReduceOp::Sum);
    let diags = check_device_traces(&two_device_traces(&fa, &fb), &mesh());
    assert_rule(&diags, "collective-mismatch");
}

/// Mutation 2: same position, different reduction monoid — the devices
/// rendezvous but would compute garbage (and our matcher treats the
/// monoid as part of the collective's identity).
#[test]
fn mutation_reduce_monoid_mismatch() {
    let build = |reduce| {
        let mut b = FuncBuilder::with_mesh("f", mesh());
        let x = b.param("x", TensorType::f32([4, 4]));
        let y = ar(&mut b, x, "B", reduce);
        b.build([y]).unwrap()
    };
    let fa = build(ReduceOp::Sum);
    let fb = build(ReduceOp::Max);
    let diags = check_device_traces(&two_device_traces(&fa, &fb), &mesh());
    assert_rule(&diags, "collective-mismatch");
}

/// Mutation 3: payload sizes disagree across the rendezvous.
#[test]
fn mutation_payload_size_mismatch() {
    let build = |rows| {
        let mut b = FuncBuilder::with_mesh("f", mesh());
        let x = b.param("x", TensorType::f32([rows, 4]));
        let y = ar(&mut b, x, "B", ReduceOp::Sum);
        b.build([y]).unwrap()
    };
    let fa = build(4);
    let fb = build(8);
    let diags = check_device_traces(&two_device_traces(&fa, &fb), &mesh());
    assert_rule(&diags, "collective-mismatch");
}

/// Mutation 4: loop trip counts disagree, so one side issues more
/// collectives than the other.
#[test]
fn mutation_trip_count_mismatch() {
    let build = |trips| {
        let mut b = FuncBuilder::with_mesh("f", mesh());
        let x = b.param("x", TensorType::f32([4, 4]));
        let results = b
            .for_loop(trips, &[x], |inner, _i, carried| {
                let t = inner.collective(
                    Collective::AllReduce {
                        axes: vec!["B".into()],
                        reduce: ReduceOp::Sum,
                    },
                    carried[0],
                )?;
                Ok(vec![t])
            })
            .unwrap();
        b.build([results[0]]).unwrap()
    };
    let fa = build(2);
    let fb = build(3);
    let diags = check_device_traces(&two_device_traces(&fa, &fb), &mesh());
    assert_rule(&diags, "collective-mismatch");
}

/// Mutation 5: one side drops the collective entirely — the other waits
/// forever.
#[test]
fn mutation_missing_collective() {
    let mut b = FuncBuilder::with_mesh("f", mesh());
    let x = b.param("x", TensorType::f32([4, 4]));
    let y = ar(&mut b, x, "B", ReduceOp::Sum);
    let fa = b.build([y]).unwrap();
    let mut b = FuncBuilder::with_mesh("f", mesh());
    let x = b.param("x", TensorType::f32([4, 4]));
    let y = b.neg(x).unwrap();
    let fb = b.build([y]).unwrap();
    let diags = check_device_traces(&two_device_traces(&fa, &fb), &mesh());
    assert_rule(&diags, "collective-mismatch");
}

/// Mutation 6: a cross-axis cyclic wait that per-axis sequence matching
/// cannot see — only the abstract rendezvous execution catches it.
#[test]
fn mutation_cross_axis_cycle() {
    let build = |first: &str, second: &str| {
        let mut b = FuncBuilder::with_mesh("f", mesh());
        let x = b.param("x", TensorType::f32([4, 4]));
        let y = ar(&mut b, x, first, ReduceOp::Sum);
        let z = ar(&mut b, y, second, ReduceOp::Sum);
        b.build([z]).unwrap()
    };
    let ta = device_trace(&build("B", "M"));
    let tb = device_trace(&build("M", "B"));
    // Wait cycle: 0 on 2 (B), 2 on 3 (M), 3 on 1 (B), 1 on 0 (M).
    let traces = vec![ta.clone(), tb.clone(), tb, ta];
    let diags = check_device_traces(&traces, &mesh());
    assert_rule(&diags, "collective-deadlock");
}

/// Mutation 7: a collective over an axis the target mesh does not have
/// (lowered for one machine, deployed on another).
#[test]
fn mutation_unknown_axis() {
    let foreign = Mesh::new([("B", 2), ("z", 2)]).unwrap();
    let mut b = FuncBuilder::with_mesh("f", foreign);
    let x = b.param("x", TensorType::f32([4, 4]));
    let y = ar(&mut b, x, "z", ReduceOp::Sum);
    let f = b.build([y]).unwrap();
    let diags = check_deadlock_freedom(&f, &mesh());
    assert_rule(&diags, "collective-unknown-axis");
}

/// Mutation 8: the same axis listed twice in one collective.
#[test]
fn mutation_duplicate_axis() {
    let mut b = FuncBuilder::with_mesh("f", mesh());
    let x = b.param("x", TensorType::f32([4, 4]));
    let y = b
        .collective(
            Collective::AllReduce {
                axes: vec!["B".into(), "B".into()],
                reduce: ReduceOp::Sum,
            },
            x,
        )
        .unwrap();
    let f = b.build([y]).unwrap();
    let diags = check_deadlock_freedom(&f, &mesh());
    assert_rule(&diags, "collective-duplicate-axis");
}

/// Mutation 9: gathering an axis the value is not sliced over.
#[test]
fn mutation_bad_gather() {
    let mut b = FuncBuilder::with_mesh("f", mesh());
    let x = b.param("x", TensorType::f32([4, 4]));
    let y = b
        .collective(
            Collective::AllGather {
                dim_axes: vec![vec!["B".into()], vec![]],
            },
            x,
        )
        .unwrap();
    let f = b.build([y]).unwrap();
    let replicated = ValueCtx::new();
    let diags = check_layouts(&f, Some(std::slice::from_ref(&replicated)), None);
    assert_rule(&diags, "layout-bad-gather");
}

/// Mutation 10: slicing the value over the same axis twice.
#[test]
fn mutation_double_slice() {
    let mut b = FuncBuilder::with_mesh("f", mesh());
    let x = b.param("x", TensorType::f32([8, 8]));
    let s1 = b
        .collective(
            Collective::AllSlice {
                dim_axes: vec![vec!["B".into()], vec![]],
            },
            x,
        )
        .unwrap();
    let s2 = b
        .collective(
            Collective::AllSlice {
                dim_axes: vec![vec![], vec!["B".into()]],
            },
            s1,
        )
        .unwrap();
    let f = b.build([s2]).unwrap();
    let replicated = ValueCtx::new();
    let diags = check_layouts(&f, Some(std::slice::from_ref(&replicated)), None);
    assert_rule(&diags, "layout-double-slice");
}

/// Mutation 11: a dropped axis — the program leaves the value sliced but
/// declares a replicated interface.
#[test]
fn mutation_dropped_axis() {
    let mut b = FuncBuilder::with_mesh("f", mesh());
    let x = b.param("x", TensorType::f32([4, 4]));
    let y = b.neg(x).unwrap();
    let f = b.build([y]).unwrap();
    // Build the sharded input ctx through the public core API.
    let mut cb = FuncBuilder::new("ctx");
    let cx = cb.param("x", TensorType::f32([4, 4]));
    let cy = cb.neg(cx).unwrap();
    let cf = cb.build([cy]).unwrap();
    let mut p = Partitioning::new(&cf, mesh()).unwrap();
    p.tile(&cf, cx, 0, &"B".into()).unwrap();
    let in_ctx = p.value_ctx(cx).clone();
    let out_ctx = ValueCtx::new();
    let diags = check_layouts(
        &f,
        Some(std::slice::from_ref(&in_ctx)),
        Some(std::slice::from_ref(&out_ctx)),
    );
    assert_rule(&diags, "layout-result-mismatch");
}

/// Mutation 12: conflicting tile assignments — both matmul operands
/// sharded over the same axis on incompatible dimensions.
#[test]
fn mutation_conflicting_tiling() {
    let mut b = FuncBuilder::new("f");
    let x = b.param("x", TensorType::f32([4, 4]));
    let w = b.param("w", TensorType::f32([4, 4]));
    let y = b.matmul(x, w).unwrap();
    let f = b.build([y]).unwrap();
    let mut p = Partitioning::new(&f, mesh()).unwrap();
    p.tile(&f, x, 0, &"B".into()).unwrap();
    p.tile(&f, w, 1, &"B".into()).unwrap();
    p.propagate(&f);
    let diags = lint::lint_partitioning(&f, &p);
    assert_rule(&diags, "sharding-conflict");
    // Conflicts are suspicious, not illegal: the program still executes.
    assert!(sharding::is_legal(&f, &p));
}

/// Mutation 13: a redundant gather/slice round-trip the partitioner
/// should have cancelled.
#[test]
fn mutation_redundant_collective_pair() {
    let mut b = FuncBuilder::with_mesh("f", mesh());
    let x = b.param("x", TensorType::f32([4, 4]));
    let g = b
        .collective(
            Collective::AllGather {
                dim_axes: vec![vec!["B".into()], vec![]],
            },
            x,
        )
        .unwrap();
    let s = b
        .collective(
            Collective::AllSlice {
                dim_axes: vec![vec!["B".into()], vec![]],
            },
            g,
        )
        .unwrap();
    let f = b.build([s]).unwrap();
    let mut cb = FuncBuilder::new("ctx");
    let cx = cb.param("x", TensorType::f32([4, 4]));
    let cy = cb.neg(cx).unwrap();
    let cf = cb.build([cy]).unwrap();
    let mut p = Partitioning::new(&cf, mesh()).unwrap();
    p.tile(&cf, cx, 0, &"B".into()).unwrap();
    let in_ctx = p.value_ctx(cx).clone();
    let diags = check_layouts(&f, Some(std::slice::from_ref(&in_ctx)), None);
    assert!(
        diags
            .iter()
            .any(|d| d.rule == "layout-redundant-pair" && d.severity == Severity::Warning),
        "{}",
        lint::render(&diags)
    );
}

/// Mutation 14: a collective over a size-1 ("degenerate") axis.
#[test]
fn mutation_degenerate_axis() {
    let degenerate = Mesh::new([("B", 2), ("one", 1)]).unwrap();
    let mut b = FuncBuilder::with_mesh("f", degenerate.clone());
    let x = b.param("x", TensorType::f32([4, 4]));
    let y = ar(&mut b, x, "one", ReduceOp::Sum);
    let f = b.build([y]).unwrap();
    let diags = check_deadlock_freedom(&f, &degenerate);
    assert_rule(&diags, "collective-degenerate-axis");
}
