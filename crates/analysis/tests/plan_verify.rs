//! Plan-level translation validation, end to end.
//!
//! Two halves:
//!
//! * a **property sweep**: every zoo model × Table 2 schedule on the
//!   1×2/2×2/4×2 mesh ladder compiles to a [`CompiledPlan`] under both
//!   `PlanOptions::default()` (overlapped) and `PlanOptions::blocking()`,
//!   and the static verifier accepts every one. Blocking plans must
//!   verify *trivially*: no collective window is open at any step.
//! * a **mutation suite**: ≥10 seeded overlap-pass bugs injected into
//!   the verifier view of real compiled plans — over-hoisted starts,
//!   mis-sunk waits, aliased slots, permuted stage orders, dropped wait
//!   edges and friends — each of which the verifier must flag.
//!
//! The mutations operate on a clone of [`CompiledPlan::verifier_view`],
//! exactly the data a buggy overlap/allocation pass would have produced,
//! so the suite pins the verifier's power over the real compiled
//! representation rather than hand-built toys.

use partir_analysis::plan::{PlanView, StageView, StepView};
use partir_analysis::{verify_plan, Severity};
use partir_core::Partitioning;
use partir_ir::{FuncBuilder, TensorType};
use partir_mesh::{HardwareConfig, Mesh};
use partir_models::schedules::{self, BATCH, MODEL};
use partir_models::{
    gns::GnsConfig, itransformer::ITransformerConfig, mlp::MlpConfig,
    transformer::TransformerConfig, unet::UNetConfig,
};
use partir_sched::{partir_jit, Schedule};
use partir_spmd::PlanOptions;
use std::sync::Arc;

/// The benchmark mesh ladder: 1×2, 2×2, 4×2 (batch × model).
fn meshes() -> Vec<Mesh> {
    [1usize, 2, 4]
        .into_iter()
        .map(|b| Mesh::new([(BATCH, b), (MODEL, 2)]).unwrap())
        .collect()
}

type ZooEntry = (&'static str, partir_ir::Func, Vec<(&'static str, Schedule)>);

fn zoo() -> Vec<ZooEntry> {
    // Batch 8 so the batch axis tiles on every mesh of the ladder.
    let unet_cfg = UNetConfig {
        batch: 8,
        ..UNetConfig::tiny()
    };
    vec![
        (
            "transformer",
            partir_models::transformer::build_train_step(&TransformerConfig::tiny())
                .unwrap()
                .func,
            schedules::transformer_table2(),
        ),
        (
            "itransformer",
            partir_models::itransformer::build_serving(&ITransformerConfig::tiny())
                .unwrap()
                .func,
            schedules::itransformer_table2(),
        ),
        (
            "unet",
            partir_models::unet::build_train_step(&unet_cfg)
                .unwrap()
                .func,
            schedules::unet_table2(),
        ),
        (
            "gns",
            partir_models::gns::build_train_step(&GnsConfig::tiny())
                .unwrap()
                .func,
            schedules::gns_table2(),
        ),
    ]
}

/// Property: the verifier accepts every zoo plan, overlapped and
/// blocking, and blocking plans have no open window at any step.
#[test]
fn zoo_plans_verify_under_both_options() {
    for (name, func, rows) in zoo() {
        for mesh in meshes() {
            let hw = HardwareConfig::tpu_v3_pod(mesh.clone());
            let mesh_label: Vec<String> = mesh.axes().iter().map(|(_, s)| s.to_string()).collect();
            for (schedule_label, schedule) in &rows {
                let label = format!("{name}/{schedule_label} on {}", mesh_label.join("x"));
                let jitted = partir_jit(&func, &hw, schedule).expect(&label);
                for (opt_label, opts) in [
                    ("overlapped", PlanOptions::default()),
                    ("blocking", PlanOptions::blocking()),
                ] {
                    let plan = jitted
                        .program
                        .compile_with(&opts)
                        .unwrap_or_else(|e| panic!("{label} ({opt_label}): {e}"));
                    let diags = plan.verify();
                    assert!(
                        diags.iter().all(|d| d.severity < Severity::Warning),
                        "{label} ({opt_label}) rejected:\n{}",
                        diags
                            .iter()
                            .map(ToString::to_string)
                            .collect::<Vec<_>>()
                            .join("\n")
                    );
                    if opt_label == "blocking" {
                        assert!(
                            plan.collective_windows().iter().all(|w| w.gap_steps == 0),
                            "{label}: blocking plan has an open collective window"
                        );
                    }
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mutation suite
// ---------------------------------------------------------------------------

/// The Megatron-style MLP on a 2×2 mesh: all_reduce and gather/slice
/// collectives with real compute inside the overlapped windows.
fn mlp_view() -> PlanView {
    let model = partir_models::mlp::build_train_step(&MlpConfig::small()).unwrap();
    let mesh = Mesh::new([(BATCH, 2), (MODEL, 2)]).unwrap();
    let mut part = Partitioning::new(&model.func, mesh).unwrap();
    let params = model.func.params().to_vec();
    part.tile(&model.func, params[0], 0, &BATCH.into()).unwrap();
    part.tile(&model.func, params[2], 1, &MODEL.into()).unwrap();
    part.propagate(&model.func);
    let program = partir_spmd::lower(&model.func, &part)
        .unwrap()
        .fused()
        .unwrap();
    let plan = program.compile_with(&PlanOptions::default()).unwrap();
    let view = plan.verifier_view().clone();
    assert!(
        verify_plan(&view)
            .iter()
            .all(|d| d.severity < Severity::Warning),
        "baseline mlp plan must verify before mutation"
    );
    view
}

/// A single all_reduce over *both* mesh axes: its per-device schedules
/// have two rendezvous stages, which is what stage-order mutations need.
fn two_axis_view() -> PlanView {
    let mut b = FuncBuilder::new("both_axes");
    let x = b.param("x", TensorType::f32([4, 4]));
    let s = b.reduce_sum(x, vec![0, 1]).unwrap();
    let f = b.build([s]).unwrap();
    let mesh = Mesh::new([(BATCH, 2), (MODEL, 2)]).unwrap();
    let mut part = Partitioning::new(&f, mesh).unwrap();
    part.tile(&f, x, 0, &BATCH.into()).unwrap();
    part.tile(&f, x, 1, &MODEL.into()).unwrap();
    part.propagate(&f);
    let program = partir_spmd::lower(&f, &part).unwrap();
    let plan = program.compile_with(&PlanOptions::default()).unwrap();
    let view = plan.verifier_view().clone();
    assert!(
        view.steps.iter().any(|s| matches!(
            s,
            StepView::CollWait { stages, .. } if stages[0].len() == 2
        )),
        "expected a two-stage collective in the two-axis reduction plan"
    );
    view
}

fn rules(view: &PlanView) -> Vec<String> {
    verify_plan(view)
        .into_iter()
        .filter(|d| d.severity >= Severity::Warning)
        .map(|d| d.rule.to_string())
        .collect()
}

fn assert_flags(view: &PlanView, rule: &str, what: &str) {
    let got = rules(view);
    assert!(
        got.iter().any(|r| r == rule),
        "{what}: expected rule {rule}, verifier reported {got:?}"
    );
}

/// First `CollStart` whose source is produced by an earlier top-level
/// step (so hoisting above that producer is provably wrong).
fn hoistable_start(view: &PlanView) -> (usize, usize) {
    for (i, step) in view.steps.iter().enumerate() {
        let StepView::CollStart { src, .. } = step else {
            continue;
        };
        let producer = view.steps[..i].iter().position(|s| {
            matches!(s, StepView::Compute { writes, .. }
                if writes.iter().any(|w| w.value == src.value))
        });
        if let Some(p) = producer {
            return (i, p);
        }
    }
    panic!("no collective start with an in-plan producer");
}

/// Mutation 1: over-hoisted start — the overlap pass moved a
/// `CollStart` above the step that produces its operand.
#[test]
fn mutation_over_hoisted_start() {
    let mut view = mlp_view();
    let (start, producer) = hoistable_start(&view);
    let s = view.steps.remove(start);
    view.steps.insert(producer, s);
    assert_flags(&view, "plan-race", "over-hoisted start");
}

/// Mutation 2: mis-sunk wait — a `CollWait` pushed past the first
/// consumer of its result.
#[test]
fn mutation_mis_sunk_wait() {
    let mut view = mlp_view();
    let (wait, consumer) = (0..view.steps.len())
        .find_map(|i| {
            let StepView::CollWait { dst, .. } = &view.steps[i] else {
                return None;
            };
            let c = view.steps[i + 1..].iter().position(|s| {
                matches!(s, StepView::Compute { reads, .. }
                    if reads.iter().any(|r| r.value == dst.value))
            })?;
            Some((i, i + 1 + c))
        })
        .expect("no wait with an in-plan consumer");
    let w = view.steps.remove(wait);
    view.steps.insert(consumer, w); // lands just *after* the consumer
    assert_flags(&view, "plan-race", "mis-sunk wait");
}

/// Mutation 3: dropped wait edge — the wait vanishes entirely, so the
/// window never closes and the result is never produced.
#[test]
fn mutation_dropped_wait() {
    let mut view = mlp_view();
    let wait = view
        .steps
        .iter()
        .position(|s| matches!(s, StepView::CollWait { .. }))
        .expect("plan has a wait");
    view.steps.remove(wait);
    assert_flags(&view, "plan-window-unpaired", "dropped wait");
}

/// Mutation 4: dropped start — the wait blocks on messages no start
/// ever put in flight.
#[test]
fn mutation_dropped_start() {
    let mut view = mlp_view();
    let start = view
        .steps
        .iter()
        .position(|s| matches!(s, StepView::CollStart { .. }))
        .expect("plan has a start");
    view.steps.remove(start);
    assert_flags(&view, "plan-window-unpaired", "dropped start");
}

/// Mutation 5: duplicated wait — one tag waited twice (a double-free of
/// the in-flight table in the executor).
#[test]
fn mutation_duplicated_wait() {
    let mut view = mlp_view();
    let wait = view
        .steps
        .iter()
        .position(|s| matches!(s, StepView::CollWait { .. }))
        .expect("plan has a wait");
    let w = view.steps[wait].clone();
    view.steps.insert(wait + 1, w);
    assert_flags(&view, "plan-window-duplicate", "duplicated wait");
}

/// Every access of `value`, anywhere in the plan, relocated to `off` —
/// what a first-fit allocator bug that hands out an in-use range does.
fn relocate(steps: &mut [StepView], value: u32, off: usize) {
    for step in steps {
        match step {
            StepView::Compute { reads, writes, .. } => {
                for a in reads.iter_mut().chain(writes.iter_mut()) {
                    if a.value == value {
                        a.off = off;
                    }
                }
            }
            StepView::CollStart { src, .. } => {
                if src.value == value {
                    src.off = off;
                }
            }
            StepView::CollWait { dst, .. } => {
                if dst.value == value {
                    dst.off = off;
                }
            }
            StepView::For(f) => {
                for (a, b) in f
                    .entry
                    .iter_mut()
                    .chain(f.carry.iter_mut())
                    .chain(f.exit.iter_mut())
                    .chain(f.bypass.iter_mut())
                {
                    if a.value == value {
                        a.off = off;
                    }
                    if b.value == value {
                        b.off = off;
                    }
                }
                relocate(&mut f.body, value, off);
            }
        }
    }
}

/// Mutation 6: aliased slots — two simultaneously-live values assigned
/// overlapping arena ranges.
#[test]
fn mutation_aliased_slots() {
    let mut view = mlp_view();
    // def/last-read positions of every top-level compute-written value.
    struct Life {
        def: usize,
        last_read: usize,
        pool: usize,
        off: usize,
    }
    let mut lives: Vec<(u32, Life)> = Vec::new();
    for (i, step) in view.steps.iter().enumerate() {
        let StepView::Compute { reads, writes, .. } = step else {
            continue;
        };
        for w in writes {
            lives.push((
                w.value,
                Life {
                    def: i,
                    last_read: i,
                    pool: w.pool,
                    off: w.off,
                },
            ));
        }
        for r in reads {
            if let Some((_, l)) = lives.iter_mut().find(|(v, _)| *v == r.value) {
                l.last_read = i;
            }
        }
    }
    // A pair (victim, thief): thief defined while victim still live, in
    // the same pool, at a different range.
    let (victim, thief) = lives
        .iter()
        .find_map(|(v, lv)| {
            let thief = lives.iter().find(|(w, lw)| {
                w != v
                    && lw.pool == lv.pool
                    && lw.off != lv.off
                    && lv.def < lw.def
                    && lw.def < lv.last_read
            })?;
            Some(((*v, lv.off), thief.0))
        })
        .expect("no overlapping-lifetime pair in the plan");
    relocate(&mut view.steps, thief, victim.1);
    assert_flags(&view, "plan-slot-overlap", "aliased slots");
}

/// Mutation 7: permuted stage order — a buggy scheduler reverses the
/// per-axis rendezvous order on the diagonal devices of the mesh. Each
/// device still runs a plausible-looking schedule (symmetry holds
/// stage-for-stage), but no global linearisation exists: a cycle of
/// devices each waits for a partner blocked on its *other* axis.
#[test]
fn mutation_permuted_stage_order() {
    let mut view = two_axis_view();
    for step in &mut view.steps {
        let StepView::CollWait { stages, .. } = step else {
            continue;
        };
        if stages[0].len() < 2 {
            continue;
        }
        let stages = Arc::make_mut(stages);
        // Devices sharing no group with device 0 form the diagonal.
        let diag: Vec<usize> = (0..stages.len())
            .filter(|&d| d == 0 || stages[0].iter().all(|s: &StageView| !s.group.contains(&d)))
            .collect();
        for d in diag {
            stages[d].reverse();
        }
    }
    assert_flags(&view, "plan-rendezvous-deadlock", "permuted stage order");
}

/// Mutation 8: asymmetric group — one device's stage table names a
/// rendezvous group its partners don't agree with.
#[test]
fn mutation_asymmetric_group() {
    let mut view = mlp_view();
    let step = view
        .steps
        .iter_mut()
        .find(|s| matches!(s, StepView::CollWait { .. }))
        .expect("plan has a wait");
    let StepView::CollWait { stages, .. } = step else {
        unreachable!()
    };
    let stages = Arc::make_mut(stages);
    // Device 0 forgets one of its partners.
    let group = &mut stages[0][0].group;
    let partner = group
        .iter()
        .position(|&d| d != 0)
        .expect("group has a partner");
    group.remove(partner);
    assert_flags(&view, "plan-rendezvous-asymmetric", "asymmetric group");
}

/// Mutation 9: out-of-bounds write — a step writes past the arena pool.
#[test]
fn mutation_oob_access() {
    let mut view = mlp_view();
    let pool_len = view.pool_len;
    let w = view
        .steps
        .iter_mut()
        .find_map(|s| match s {
            StepView::Compute { writes, .. } => writes.first_mut(),
            _ => None,
        })
        .expect("plan has a compute write");
    w.off = pool_len[w.pool];
    assert_flags(&view, "plan-oob-access", "out-of-bounds write");
}

/// Mutation 10: shrunk pool — the allocator under-reports the arena
/// size the steps were planned against.
#[test]
fn mutation_shrunk_pool() {
    let mut view = mlp_view();
    assert!(view.pool_len[0] > 1, "mlp plan uses the f32 pool");
    view.pool_len[0] = 1;
    assert_flags(&view, "plan-oob-access", "shrunk pool");
}

/// Mutation 11: stale source token — a start reads a range the compiler
/// believes holds a value that was never materialised there (the
/// effect-level signature of hoisting above a redefinition).
#[test]
fn mutation_stale_start_token() {
    let mut view = mlp_view();
    let src = view
        .steps
        .iter_mut()
        .find_map(|s| match s {
            StepView::CollStart { src, .. } => Some(src),
            _ => None,
        })
        .expect("plan has a start");
    src.value = u32::MAX - 1;
    assert_flags(&view, "plan-race", "stale start token");
}

/// Mutation 12: a bad commute decision — two dependent compute steps
/// swapped, exactly what a buggy `steps_commute` would permit.
#[test]
fn mutation_swapped_dependent_steps() {
    let mut view = mlp_view();
    let i = (0..view.steps.len() - 1)
        .find(|&i| {
            let (StepView::Compute { writes, .. }, StepView::Compute { reads, .. }) =
                (&view.steps[i], &view.steps[i + 1])
            else {
                return false;
            };
            writes
                .iter()
                .any(|w| reads.iter().any(|r| r.value == w.value))
        })
        .expect("no adjacent dependent compute pair");
    view.steps.swap(i, i + 1);
    assert_flags(&view, "plan-race", "swapped dependent steps");
}
