//! Analyzer over the model-zoo goldens: every Table 2 schedule on every
//! zoo model must lint **clean** — zero `Error`-severity diagnostics on
//! both the propagated partitioning and the lowered device program —
//! and the static peak-memory bound must dominate the simulated peak on
//! every model/mesh pair. This is the "no false positives" half of the
//! analyzer's contract (the mutation suite is the "no false negatives"
//! half).

use partir_analysis::{error_count, lint, static_peak_bound};
use partir_mesh::{HardwareConfig, Mesh};
use partir_models::schedules::{self, BATCH, MODEL};
use partir_models::{
    gns::GnsConfig, itransformer::ITransformerConfig, mlp::MlpConfig,
    transformer::TransformerConfig, unet::UNetConfig,
};
use partir_sched::{partir_jit, Schedule};

type ZooEntry = (&'static str, partir_ir::Func, Vec<(&'static str, Schedule)>);

fn zoo() -> Vec<ZooEntry> {
    vec![
        (
            "transformer",
            partir_models::transformer::build_train_step(&TransformerConfig::tiny())
                .unwrap()
                .func,
            schedules::transformer_table2(),
        ),
        (
            "itransformer",
            partir_models::itransformer::build_serving(&ITransformerConfig::tiny())
                .unwrap()
                .func,
            schedules::itransformer_table2(),
        ),
        (
            "unet",
            partir_models::unet::build_train_step(&UNetConfig::tiny())
                .unwrap()
                .func,
            schedules::unet_table2(),
        ),
        (
            "gns",
            partir_models::gns::build_train_step(&GnsConfig::tiny())
                .unwrap()
                .func,
            schedules::gns_table2(),
        ),
        (
            "mlp",
            partir_models::mlp::build_train_step(&MlpConfig::small())
                .unwrap()
                .func,
            vec![(
                "BP",
                Schedule::new([partir_sched::ManualPartition::new("BP", BATCH)
                    .dim("x", 0)
                    .into()]),
            )],
        ),
    ]
}

fn meshes() -> Vec<Mesh> {
    vec![
        Mesh::new([(BATCH, 2)]).unwrap(),
        Mesh::new([(BATCH, 2), (MODEL, 2)]).unwrap(),
    ]
}

#[test]
fn zoo_goldens_lint_clean() {
    for (name, func, rows) in zoo() {
        for mesh in meshes() {
            let hw = HardwareConfig::tpu_v3_pod(mesh.clone());
            for (label, schedule) in &rows {
                // Schedules addressing the model axis need it present.
                let needs_model = schedule.label().contains("MP")
                    || schedule.label().contains("EMB")
                    || schedule.label().contains("MQ");
                if needs_model && mesh.axes().len() < 2 {
                    continue;
                }
                let jitted = match partir_jit(&func, &hw, schedule) {
                    Ok(j) => j,
                    Err(e) => panic!("{name}/{label} on {mesh:?} failed to jit: {e}"),
                };
                let part_diags = lint::lint_partitioning(&func, &jitted.partitioning);
                assert_eq!(
                    error_count(&part_diags),
                    0,
                    "{name}/{label}: partitioning lint errors:\n{}",
                    lint::render(&part_diags)
                );
                let program = &jitted.program;
                let dev_diags = lint::lint_device_func(
                    program.func(),
                    program.mesh(),
                    Some(program.input_ctxs()),
                    Some(program.output_ctxs()),
                );
                assert_eq!(
                    error_count(&dev_diags),
                    0,
                    "{name}/{label}: device lint errors:\n{}",
                    lint::render(&dev_diags)
                );
            }
        }
    }
}

#[test]
fn static_bound_dominates_simulated_peak_across_zoo() {
    for (name, func, rows) in zoo() {
        // The unpartitioned program itself.
        let bound = static_peak_bound(&func);
        let simulated = partir_sim::peak_memory_bytes(&func);
        assert!(
            bound >= simulated,
            "{name} (global): bound {bound} < simulated {simulated}"
        );
        // And every lowered device program.
        for mesh in meshes() {
            let hw = HardwareConfig::tpu_v3_pod(mesh.clone());
            for (label, schedule) in &rows {
                let needs_model = schedule.label().contains("MP")
                    || schedule.label().contains("EMB")
                    || schedule.label().contains("MQ");
                if needs_model && mesh.axes().len() < 2 {
                    continue;
                }
                let jitted = partir_jit(&func, &hw, schedule).unwrap();
                let f = jitted.program.func();
                let bound = static_peak_bound(f);
                let simulated = partir_sim::peak_memory_bytes(f);
                assert!(
                    bound >= simulated,
                    "{name}/{label} on {mesh:?}: bound {bound} < simulated {simulated}"
                );
            }
        }
    }
}
