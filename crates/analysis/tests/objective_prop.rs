//! Rank agreement between the static objective and the simulator — the
//! contract that lets `StaticSearch` and `CostSource::Static` replace
//! simulation-in-the-loop: across random legal partitionings of the
//! model zoo on the 1×2 / 2×2 / 4×2 mesh ladder,
//!
//! * **top-1 agreement** — the candidate the static objective ranks
//!   best is (one of) the simulator's best;
//! * **monotone traffic ordering** — whenever the simulator says two
//!   candidates move meaningfully different traffic, the static
//!   objective orders their `comm_bytes` the same way.
//!
//! Plus the mutation check: a deliberately mis-weighted objective
//! (communication zeroed out) must *fail* the same property — proof the
//! property has teeth, not just tolerance.

use partir_analysis::{is_legal, static_cost_with, ObjectiveConfig};
use partir_core::Partitioning;
use partir_ir::Func;
use partir_mesh::{Axis, HardwareConfig, Mesh};
use partir_models::{mlp::MlpConfig, transformer::TransformerConfig};
use partir_prng::{propcheck::check, Rng};

/// Relative tolerance for "same cost": exact ties (symmetric states) and
/// float noise, nothing more.
const TIE_EPS: f64 = 1e-9;

/// Pairs whose simulated traffic differs by more than this must be
/// ordered identically by the static objective.
const TRAFFIC_EPS: f64 = 0.01;

fn zoo_model(rng: &mut Rng) -> Func {
    if rng.gen_bool(0.5) {
        partir_models::mlp::build_train_step(&MlpConfig::small())
            .expect("mlp")
            .func
    } else {
        partir_models::transformer::build_train_step(&TransformerConfig::tiny())
            .expect("transformer")
            .func
    }
}

fn mesh_ladder(rng: &mut Rng) -> Mesh {
    match rng.gen_range(3) {
        0 => Mesh::new([("batch", 2)]).unwrap(),
        1 => Mesh::new([("batch", 2), ("model", 2)]).unwrap(),
        _ => Mesh::new([("batch", 4), ("model", 2)]).unwrap(),
    }
}

/// Up to `want` distinct legal partitionings reached by 1–3 random tile
/// actions from replicated (replicated itself included).
fn random_legal_states(func: &Func, mesh: &Mesh, rng: &mut Rng, want: usize) -> Vec<Partitioning> {
    let axes: Vec<Axis> = mesh.axes().iter().map(|(a, _)| a.clone()).collect();
    let params = func.params().to_vec();
    let root = Partitioning::new(func, mesh.clone()).expect("state");
    let mut seen = vec![root.fingerprint()];
    let mut states = vec![root.clone()];
    for _ in 0..want * 6 {
        if states.len() >= want {
            break;
        }
        let mut s = root.clone();
        for _ in 0..rng.gen_range_in(1, 3) {
            let v = params[rng.gen_range(params.len())];
            let rank = func.value_type(v).rank();
            if rank == 0 {
                continue;
            }
            let axis = &axes[rng.gen_range(axes.len())];
            let _ = s.tile(func, v, rng.gen_range(rank), axis);
            s.propagate(func);
        }
        let fp = s.fingerprint();
        if seen.contains(&fp) || !is_legal(func, &s) {
            continue;
        }
        seen.push(fp);
        states.push(s);
    }
    states
}

/// One agreement case under `cfg`. Returns `Err` on a rank violation —
/// the honest configuration must never produce one, the mis-weighted
/// configuration must produce at least one over the run.
fn agreement_case(cfg: ObjectiveConfig, rng: &mut Rng) -> Result<(), String> {
    let func = zoo_model(rng);
    let mesh = mesh_ladder(rng);
    let hw = HardwareConfig::tpu_v3_pod(mesh.clone());
    let states = random_legal_states(&func, &mesh, rng, 5);
    if states.len() < 2 {
        return Ok(());
    }
    let mut static_costs = Vec::with_capacity(states.len());
    let mut sim_costs = Vec::with_capacity(states.len());
    let mut static_bytes = Vec::with_capacity(states.len());
    let mut sim_bytes = Vec::with_capacity(states.len());
    for s in &states {
        let stat = static_cost_with(&func, s, &hw, cfg).map_err(|e| format!("static cost: {e}"))?;
        let eval = partir_sim::evaluate(&func, s, &hw).map_err(|e| format!("evaluate: {e}"))?;
        let breakdown = eval.cost_breakdown(&hw);
        static_costs.push(stat.cost(&hw));
        sim_costs.push(breakdown.cost);
        static_bytes.push(stat.comm_bytes);
        sim_bytes.push(breakdown.comm_bytes);
    }

    // Top-1 agreement: the static argmin must be sim-optimal (up to
    // exact-tie noise).
    let static_best = (0..states.len())
        .min_by(|&a, &b| static_costs[a].total_cmp(&static_costs[b]))
        .unwrap();
    let sim_min = sim_costs.iter().cloned().fold(f64::INFINITY, f64::min);
    if sim_costs[static_best] > sim_min * (1.0 + TIE_EPS) {
        return Err(format!(
            "top-1 disagreement: static picked candidate {static_best} \
             (sim cost {}), simulator's best is {sim_min}\n\
             static costs: {static_costs:?}\nsim costs: {sim_costs:?}",
            sim_costs[static_best]
        ));
    }

    // Monotone traffic ordering on pairs the simulator can tell apart.
    for i in 0..states.len() {
        for j in (i + 1)..states.len() {
            let (a, b) = (sim_bytes[i], sim_bytes[j]);
            if (a - b).abs() <= TRAFFIC_EPS * a.max(b).max(1.0) {
                continue;
            }
            let sim_says = a < b;
            let static_says = static_bytes[i] < static_bytes[j];
            if sim_says != static_says {
                return Err(format!(
                    "traffic ordering flipped for candidates {i},{j}: \
                     sim bytes ({a}, {b}), static bytes ({}, {})",
                    static_bytes[i], static_bytes[j]
                ));
            }
        }
    }
    Ok(())
}

#[test]
fn static_objective_rank_agrees_with_simulator() {
    check("static/sim rank agreement", 24, |rng| {
        agreement_case(ObjectiveConfig::default(), rng)
    });
}

#[test]
fn misweighted_objective_is_caught() {
    // Zero the communication term: a broken calibration. The *same*
    // property over the *same* cases must now detect violations — if it
    // cannot tell an objective that ignores communication from the
    // honest one, it gates nothing.
    let broken = ObjectiveConfig {
        comm_weight: 0.0,
        ..ObjectiveConfig::default()
    };
    let mut violations = 0;
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xBAD_0B1 ^ (case * 0x9E37_79B9));
        if agreement_case(broken, &mut rng).is_err() {
            violations += 1;
        }
    }
    assert!(
        violations > 0,
        "a comm-blind objective passed all 24 rank-agreement cases — \
         the property has no teeth"
    );
}
