//! The analyzer's soundness property: programs the static analyzer
//! passes (zero `Error` diagnostics) execute deadlock-free on the
//! threaded message-passing runtime — over both a 1×2 and a 2×2 mesh —
//! and the static peak-memory bound dominates the simulated peak.
//!
//! This is the link the issue demands between the deadlock *checker*
//! and the deadlock-*prone* runtime: the checker's verdict is tested
//! against actual concurrent execution, not just against itself.

use partir_analysis::{error_count, lint, static_peak_bound};
use partir_core::Partitioning;
use partir_ir::{BinaryOp, Func, FuncBuilder, Literal, TensorType, UnaryOp, ValueId};
use partir_mesh::{Axis, Mesh};
use partir_prng::{propcheck::check, Rng};
use partir_spmd::{lower, RuntimeConfig};

const N: usize = 8;

#[derive(Debug, Clone)]
enum Step {
    Unary(UnaryOp, usize),
    Binary(BinaryOp, usize, usize),
    Matmul(usize, usize),
    Transpose(usize),
}

fn gen_step(rng: &mut Rng) -> Step {
    match rng.gen_range(4) {
        0 => {
            let u = *rng.choose(&[UnaryOp::Tanh, UnaryOp::Neg, UnaryOp::Exp]);
            Step::Unary(u, rng.gen_range(64))
        }
        1 => {
            let b = *rng.choose(&[BinaryOp::Add, BinaryOp::Sub, BinaryOp::Mul]);
            Step::Binary(b, rng.gen_range(64), rng.gen_range(64))
        }
        2 => Step::Matmul(rng.gen_range(64), rng.gen_range(64)),
        _ => Step::Transpose(rng.gen_range(64)),
    }
}

fn build_program(steps: &[Step]) -> (Func, Vec<ValueId>) {
    let mut b = FuncBuilder::new("prop");
    let mut pool = vec![
        b.param("x", TensorType::f32([N, N])),
        b.param("y", TensorType::f32([N, N])),
    ];
    for step in steps {
        let pick = |i: usize| pool[i % pool.len()];
        let v = match step {
            Step::Unary(u, i) => b.unary(*u, pick(*i)).unwrap(),
            Step::Binary(op, i, j) => b.binary(*op, pick(*i), pick(*j)).unwrap(),
            Step::Matmul(i, j) => b.matmul(pick(*i), pick(*j)).unwrap(),
            Step::Transpose(i) => b.transpose(pick(*i), vec![1, 0]).unwrap(),
        };
        pool.push(v);
    }
    let result = *pool.last().unwrap();
    let func = b.build([result]).unwrap();
    (func, pool)
}

fn inputs_for(func: &Func, rng: &mut Rng) -> Vec<Literal> {
    func.params()
        .iter()
        .map(|&p| {
            let ty = func.value_type(p);
            let data: Vec<f32> = (0..ty.shape.num_elements())
                .map(|_| rng.unit_f32())
                .collect();
            Literal::from_f32(data, ty.shape.clone()).unwrap()
        })
        .collect()
}

fn random_partitioning(func: &Func, pool: &[ValueId], mesh: Mesh, rng: &mut Rng) -> Partitioning {
    let axes: Vec<Axis> = mesh.axes().iter().map(|(a, _)| a.clone()).collect();
    let mut part = Partitioning::new(func, mesh).unwrap();
    let n_actions = rng.gen_range(5);
    for _ in 0..n_actions {
        let value = pool[rng.gen_range(pool.len())];
        let axis = &axes[rng.gen_range(axes.len())];
        if rng.gen_bool(0.15) {
            let _ = part.atomic(func, value, axis);
        } else {
            let _ = part.tile(func, value, rng.gen_range(2), axis);
        }
        part.propagate(func);
    }
    part
}

#[test]
fn analyzer_passing_programs_run_deadlock_free() {
    check("analyzer pass implies deadlock-free", 24, |rng| {
        let steps: Vec<Step> = {
            let len = rng.gen_range_in(1, 8);
            (0..len).map(|_| gen_step(rng)).collect()
        };
        let (func, pool) = build_program(&steps);
        let mesh = if rng.gen_bool(0.5) {
            Mesh::new([("a", 2)]).unwrap() // 1×2
        } else {
            Mesh::new([("a", 2), ("b", 2)]).unwrap() // 2×2
        };
        let part = random_partitioning(&func, &pool, mesh, rng);

        let program = lower(&func, &part).unwrap();
        let diags = lint::lint_device_func(
            program.func(),
            program.mesh(),
            Some(program.input_ctxs()),
            Some(program.output_ctxs()),
        );
        if error_count(&diags) > 0 {
            return Err(format!(
                "analyzer rejected a lowered program:\n{}",
                lint::render(&diags)
            ));
        }

        // The analyzer passed it, so the threaded runtime must not
        // deadlock (any timeout/failure here falsifies the property).
        let inputs = inputs_for(&func, rng);
        let (outputs, _stats) = program
            .execute_global_threaded(&inputs, &RuntimeConfig::default())
            .map_err(|e| format!("threaded runtime failed: {e}"))?;
        let lockstep = program
            .execute_global(&inputs)
            .map_err(|e| format!("lockstep runtime failed: {e}"))?;
        let diff = lockstep[0].max_abs_diff(&outputs[0]).unwrap();
        if diff != 0.0 {
            return Err(format!("threaded vs lockstep diff {diff}"));
        }

        // Static memory bound dominates the simulated peak.
        let bound = static_peak_bound(program.func());
        let simulated = partir_sim::peak_memory_bytes(program.func());
        if bound < simulated {
            return Err(format!("static bound {bound} < simulated peak {simulated}"));
        }
        Ok(())
    });
}
