//! A small lattice-based dataflow framework over [`Func`] regions.
//!
//! Facts are values of a join-semilattice ([`Fact`]) attached to SSA
//! values. Two solvers are provided:
//!
//! * [`forward_fixpoint`] — propagates facts from parameters through ops
//!   to results. `for` regions are handled precisely: carried region
//!   params join the loop operands *and* the region results (the
//!   loop-carried feedback edge), and op results join the region results;
//!   the solver iterates to a fixpoint, so facts converge for any
//!   finite-height lattice.
//! * [`backward_fixpoint`] — propagates facts from use sites back to
//!   definitions over a [`Linearization`] (the same op order the memory
//!   simulator uses). Liveness ([`crate::memory`]) is its canonical
//!   instance.
//!
//! Because all values of a function — including region-nested ones —
//! live in one flat arena, a fact map is a plain `Vec` indexed by
//! [`ValueId`].

use partir_ir::{Func, OpId, ValueId};

/// A join-semilattice of dataflow facts.
///
/// `join` must be monotone, idempotent and commutative, and the lattice
/// must have finite height (every ascending chain stabilises) or the
/// solvers may not terminate.
pub trait Fact: Clone + PartialEq {
    /// The least element (no information).
    fn bottom() -> Self;

    /// Joins `other` into `self`; returns whether `self` changed.
    fn join(&mut self, other: &Self) -> bool;
}

/// A flat (three-level) lattice over any equatable payload:
/// `Bottom < Known(t) < Top`, with `Known(a) ⊔ Known(b) = Top` when
/// `a != b`. The workhorse for must-style analyses like layout tracking.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Flat<T> {
    /// Not yet reached.
    Bottom,
    /// Exactly this value on every path.
    Known(T),
    /// Conflicting values met.
    Top,
}

impl<T: Clone + PartialEq> Fact for Flat<T> {
    fn bottom() -> Self {
        Flat::Bottom
    }

    fn join(&mut self, other: &Self) -> bool {
        match (&*self, other) {
            (_, Flat::Bottom) | (Flat::Top, _) => false,
            (Flat::Bottom, _) => {
                *self = other.clone();
                true
            }
            (Flat::Known(a), Flat::Known(b)) if a == b => false,
            _ => {
                *self = Flat::Top;
                true
            }
        }
    }
}

/// Per-value facts, indexed by [`ValueId`].
#[derive(Debug, Clone)]
pub struct FactMap<F> {
    facts: Vec<F>,
}

impl<F: Fact> FactMap<F> {
    fn new(n: usize) -> Self {
        FactMap {
            facts: vec![F::bottom(); n],
        }
    }

    /// The fact for `v`.
    pub fn get(&self, v: ValueId) -> &F {
        &self.facts[v.0 as usize]
    }

    /// Joins `fact` into `v`'s slot; returns whether it changed.
    pub fn join(&mut self, v: ValueId, fact: &F) -> bool {
        self.facts[v.0 as usize].join(fact)
    }
}

/// A forward analysis: seeds parameter facts and transfers operand facts
/// to result facts per op.
pub trait ForwardAnalysis {
    /// The lattice.
    type Fact: Fact;

    /// The fact of the `index`-th function parameter.
    fn entry(&self, func: &Func, index: usize, v: ValueId) -> Self::Fact;

    /// The fact of a loop index region param (defaults to ⊥).
    fn loop_index(&self, _func: &Func, _v: ValueId) -> Self::Fact {
        Self::Fact::bottom()
    }

    /// Result facts of a non-region op, one per result, given the facts
    /// of its operands.
    fn transfer(&self, func: &Func, op: OpId, operands: &[Self::Fact]) -> Vec<Self::Fact>;
}

/// Runs `analysis` to a fixpoint and returns the per-value facts.
pub fn forward_fixpoint<A: ForwardAnalysis>(func: &Func, analysis: &A) -> FactMap<A::Fact> {
    let mut facts = FactMap::new(func.num_values());
    for (i, &p) in func.params().iter().enumerate() {
        let f = analysis.entry(func, i, p);
        facts.join(p, &f);
    }
    // Arena order is a valid execution order within each region, and a
    // `for` op precedes its body ops in the arena, so one pass flows
    // facts forward; repeated passes resolve the loop feedback and
    // region-result edges. Finite lattice height bounds the iteration.
    loop {
        let mut changed = false;
        for op_id in func.op_ids() {
            let op = func.op(op_id);
            if let Some(region) = &op.region {
                let idx = analysis.loop_index(func, region.params[0]);
                changed |= facts.join(region.params[0], &idx);
                for (i, &operand) in op.operands.iter().enumerate() {
                    let f = facts.get(operand).clone();
                    changed |= facts.join(region.params[1 + i], &f);
                }
                for (i, &yielded) in region.results.iter().enumerate() {
                    let f = facts.get(yielded).clone();
                    // Loop-carried feedback: the next iteration sees the
                    // yielded fact as its param fact.
                    changed |= facts.join(region.params[1 + i], &f);
                    changed |= facts.join(op.results[i], &f);
                }
            } else {
                let operands: Vec<A::Fact> =
                    op.operands.iter().map(|&v| facts.get(v).clone()).collect();
                let results = analysis.transfer(func, op_id, &operands);
                debug_assert_eq!(results.len(), op.results.len(), "transfer arity");
                for (&r, f) in op.results.iter().zip(&results) {
                    changed |= facts.join(r, f);
                }
            }
        }
        if !changed {
            return facts;
        }
    }
}

/// The linearisation the memory analyses agree on: region bodies inline
/// once, *before* their owning op — exactly the order
/// `partir_sim::memory::peak_memory_bytes` walks.
#[derive(Debug, Clone)]
pub struct Linearization {
    order: Vec<OpId>,
}

impl Linearization {
    /// Linearises `func`.
    pub fn of(func: &Func) -> Self {
        fn walk(func: &Func, body: &[OpId], order: &mut Vec<OpId>) {
            for &op_id in body {
                if let Some(region) = &func.op(op_id).region {
                    walk(func, &region.body, order);
                }
                order.push(op_id);
            }
        }
        let mut order = Vec::with_capacity(func.num_ops());
        walk(func, func.body(), &mut order);
        Linearization { order }
    }

    /// Ops in linear order.
    pub fn order(&self) -> &[OpId] {
        &self.order
    }

    /// Number of linearised positions; position `len()` means "after the
    /// last op" (where results and parameters stay live).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the function has no ops.
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

/// A backward analysis: facts flow from use sites (and the function
/// exit) back to value definitions.
pub trait BackwardAnalysis {
    /// The lattice.
    type Fact: Fact;

    /// The fact seeded at the function exit for value `v` (results and
    /// parameters; ⊥ to seed nothing).
    fn exit(&self, func: &Func, v: ValueId) -> Self::Fact;

    /// The fact a use of `v` by `op` (at linear position `pos`)
    /// contributes.
    fn use_site(&self, func: &Func, op: OpId, pos: usize, v: ValueId) -> Self::Fact;
}

/// Runs `analysis` backward over `lin` to a fixpoint.
///
/// Region results count as used by their owning `for` op (they are what
/// the loop hands back), matching the simulator's liveness convention.
pub fn backward_fixpoint<A: BackwardAnalysis>(
    func: &Func,
    lin: &Linearization,
    analysis: &A,
) -> FactMap<A::Fact> {
    let mut facts = FactMap::new(func.num_values());
    for &r in func.results() {
        let f = analysis.exit(func, r);
        facts.join(r, &f);
    }
    for &p in func.params() {
        let f = analysis.exit(func, p);
        facts.join(p, &f);
    }
    loop {
        let mut changed = false;
        for (pos, &op_id) in lin.order().iter().enumerate().rev() {
            let op = func.op(op_id);
            for &operand in &op.operands {
                let f = analysis.use_site(func, op_id, pos, operand);
                changed |= facts.join(operand, &f);
            }
            if let Some(region) = &op.region {
                for &yielded in &region.results {
                    let f = analysis.use_site(func, op_id, pos, yielded);
                    changed |= facts.join(yielded, &f);
                }
            }
        }
        if !changed {
            return facts;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::{FuncBuilder, TensorType};

    /// Tracks which parameters a value (transitively) derives from.
    struct Taint;

    #[derive(Debug, Clone, PartialEq, Default)]
    struct ParamSet(Vec<usize>);

    impl Fact for ParamSet {
        fn bottom() -> Self {
            ParamSet::default()
        }

        fn join(&mut self, other: &Self) -> bool {
            let mut changed = false;
            for &p in &other.0 {
                if !self.0.contains(&p) {
                    self.0.push(p);
                    changed = true;
                }
            }
            self.0.sort_unstable();
            changed
        }
    }

    impl ForwardAnalysis for Taint {
        type Fact = ParamSet;

        fn entry(&self, _func: &Func, index: usize, _v: ValueId) -> ParamSet {
            ParamSet(vec![index])
        }

        fn transfer(&self, func: &Func, op: OpId, operands: &[ParamSet]) -> Vec<ParamSet> {
            let mut out = ParamSet::bottom();
            for f in operands {
                out.join(f);
            }
            vec![out; func.op(op).results.len()]
        }
    }

    #[test]
    fn forward_reaches_through_straightline_code() {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([4, 4]));
        let w = b.param("w", TensorType::f32([4, 4]));
        let y = b.matmul(x, w).unwrap();
        let z = b.neg(y).unwrap();
        let f = b.build([z]).unwrap();
        let facts = forward_fixpoint(&f, &Taint);
        assert_eq!(facts.get(z), &ParamSet(vec![0, 1]));
    }

    #[test]
    fn forward_feeds_loop_carried_values_back() {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([4]));
        let w = b.param("w", TensorType::f32([4]));
        let results = b
            .for_loop(3, &[x], |inner, _i, carried| {
                // Each iteration folds `w` into the carried value: the
                // carried param must end up tainted by both params.
                let t = inner.add(carried[0], w)?;
                Ok(vec![t])
            })
            .unwrap();
        let f = b.build([results[0]]).unwrap();
        let facts = forward_fixpoint(&f, &Taint);
        assert_eq!(facts.get(results[0]), &ParamSet(vec![0, 1]));
        // The region param itself converged to the joined fact too.
        let region = f.op(f.body()[0]).region.as_ref().unwrap();
        assert_eq!(facts.get(region.params[1]), &ParamSet(vec![0, 1]));
    }

    #[test]
    fn flat_lattice_joins() {
        let mut f = Flat::Bottom;
        assert!(f.join(&Flat::Known(1)));
        assert!(!f.join(&Flat::Known(1)));
        assert!(f.join(&Flat::Known(2)));
        assert_eq!(f, Flat::Top);
        assert!(!f.join(&Flat::Known(3)));
        assert!(!Flat::<i32>::Bottom.join(&Flat::Bottom));
    }

    #[test]
    fn linearization_matches_simulator_order() {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([4]));
        let results = b
            .for_loop(2, &[x], |inner, _i, carried| {
                let t = inner.neg(carried[0])?;
                Ok(vec![t])
            })
            .unwrap();
        let y = b.neg(results[0]).unwrap();
        let f = b.build([y]).unwrap();
        let lin = Linearization::of(&f);
        assert_eq!(lin.len(), 3);
        assert!(!lin.is_empty());
        // Body op first, then the for, then the trailing neg.
        let kinds: Vec<&str> = lin.order().iter().map(|&o| f.op(o).kind.name()).collect();
        assert_eq!(kinds, ["neg", "for", "neg"]);
    }
}
