//! Static collective-matching: proving a program's collectives rendezvous
//! without running the threaded runtime.
//!
//! The threaded runtime deadlocks when the devices of a collective group
//! disagree about *which* collective to issue next — different op order,
//! different axes, different reduction monoid, different payload size, or
//! a loop iterating a different number of times. This module extracts a
//! per-device [`Event`] trace (collectives plus loop structure) and
//! applies two complementary checks. Per mesh axis, all members of every
//! [`Mesh::collective_groups`] group must issue identical *projected*
//! sequences — a necessary condition that localises a mismatch to a
//! device pair and axis for the diagnostic. Matching projections alone
//! are not sufficient, though: devices can also wedge in a *cross-axis*
//! cycle (0 waits on 2 over one axis while 2 waits on 3 over another,
//! …) where every per-axis projection agrees. So the checker also runs
//! an abstract rendezvous execution: repeatedly complete any collective
//! sitting at the head of all of its participants' traces. Completing
//! an enabled collective never disables another (the system is
//! monotone), so greedy draining is sound *and* complete — the traces
//! drain fully iff no schedule of the blocking-rendezvous system
//! deadlocks.
//!
//! SPMD programs produced by `partir_spmd::lower` run one function on
//! every device, so their traces agree by construction; the checker still
//! validates the structural side conditions (axes exist in the mesh, no
//! axis repeats within one collective, …) that the symmetry argument
//! rests on, and [`check_device_traces`] accepts genuinely per-device
//! traces so mis-matched (MPMD-style or corrupted) programs are caught.

use partir_ir::verify::op_path;
use partir_ir::{Collective, Func, OpId, OpKind, ReduceOp};
use partir_mesh::{Axis, Mesh};

use crate::diag::{error_count, Diagnostic, Severity};

/// One collective issue site in a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CollectiveEvent {
    /// Short collective mnemonic (AR, AG, AS, RS, A2A).
    pub mnemonic: &'static str,
    /// Mesh axes communicated over, deduplicated, in first-use order.
    pub axes: Vec<Axis>,
    /// Reduction monoid, for reducing collectives.
    pub reduce: Option<ReduceOp>,
    /// Element count of the (device-local) payload.
    pub elements: usize,
    /// Op path of the issue site (diagnostics only — not part of the
    /// rendezvous identity).
    pub path: String,
}

impl CollectiveEvent {
    /// Whether two events rendezvous successfully (everything but the
    /// issue site must agree).
    fn matches(&self, other: &CollectiveEvent) -> bool {
        self.mnemonic == other.mnemonic
            && self.axes == other.axes
            && self.reduce == other.reduce
            && self.elements == other.elements
    }

    fn describe(&self) -> String {
        format!(
            "{}[{}] of {} elements at {}",
            self.mnemonic,
            self.axes
                .iter()
                .map(|a| format!("\"{a}\""))
                .collect::<Vec<_>>()
                .join(", "),
            self.elements,
            self.path
        )
    }
}

/// A node of a device's communication trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// A collective issue site.
    Collective(CollectiveEvent),
    /// A counted loop around a sub-trace.
    Loop {
        /// Iterations.
        trip_count: usize,
        /// Events of one iteration.
        body: Vec<Event>,
    },
}

/// Extracts the communication trace of (every device of) an SPMD
/// program: collectives in program order, loops kept structural.
pub fn device_trace(func: &Func) -> Vec<Event> {
    fn walk(func: &Func, body: &[OpId], out: &mut Vec<Event>) {
        for &op_id in body {
            let op = func.op(op_id);
            match &op.kind {
                OpKind::Collective(c) => out.push(Event::Collective(CollectiveEvent {
                    mnemonic: c.mnemonic(),
                    axes: c.axes(),
                    reduce: match c {
                        Collective::AllReduce { reduce, .. }
                        | Collective::ReduceScatter { reduce, .. } => Some(*reduce),
                        _ => None,
                    },
                    elements: func.value_type(op.operands[0]).shape.num_elements(),
                    path: op_path(func, op_id),
                })),
                OpKind::For { trip_count } => {
                    let mut inner = Vec::new();
                    if let Some(region) = &op.region {
                        walk(func, &region.body, &mut inner);
                    }
                    out.push(Event::Loop {
                        trip_count: *trip_count,
                        body: inner,
                    });
                }
                _ => {}
            }
        }
    }
    let mut out = Vec::new();
    walk(func, func.body(), &mut out);
    out
}

/// Projects a trace onto one mesh axis: collectives not involving the
/// axis are dropped, empty loops vanish and single-trip loops inline.
fn project(trace: &[Event], axis: &Axis) -> Vec<Event> {
    let mut out = Vec::new();
    for ev in trace {
        match ev {
            Event::Collective(c) => {
                if c.axes.contains(axis) {
                    out.push(ev.clone());
                }
            }
            Event::Loop { trip_count, body } => {
                let inner = project(body, axis);
                if inner.is_empty() || *trip_count == 0 {
                    continue;
                }
                if *trip_count == 1 {
                    out.extend(inner);
                } else {
                    out.push(Event::Loop {
                        trip_count: *trip_count,
                        body: inner,
                    });
                }
            }
        }
    }
    out
}

/// First point where two projected traces disagree, described for a
/// diagnostic; `None` when they match event-for-event.
fn first_divergence(a: &[Event], b: &[Event]) -> Option<String> {
    for i in 0..a.len().max(b.len()) {
        match (a.get(i), b.get(i)) {
            (None, None) => return None,
            (Some(Event::Collective(x)), None) => {
                return Some(format!("{} has no counterpart", x.describe()))
            }
            (None, Some(Event::Collective(y))) => {
                return Some(format!("{} has no counterpart", y.describe()))
            }
            (Some(Event::Loop { .. }), None) | (None, Some(Event::Loop { .. })) => {
                return Some("a loop of collectives has no counterpart".to_string())
            }
            (Some(Event::Collective(x)), Some(Event::Collective(y))) => {
                if !x.matches(y) {
                    return Some(format!("{} vs {}", x.describe(), y.describe()));
                }
            }
            (
                Some(Event::Loop {
                    trip_count: ta,
                    body: ba,
                }),
                Some(Event::Loop {
                    trip_count: tb,
                    body: bb,
                }),
            ) => {
                if ta != tb {
                    return Some(format!(
                        "loop trip counts disagree ({ta} vs {tb}) around collectives"
                    ));
                }
                if let Some(d) = first_divergence(ba, bb) {
                    return Some(format!("inside a {ta}-trip loop: {d}"));
                }
            }
            (Some(Event::Collective(x)), Some(Event::Loop { .. })) => {
                return Some(format!("{} vs a loop of collectives", x.describe()))
            }
            (Some(Event::Loop { .. }), Some(Event::Collective(y))) => {
                return Some(format!("a loop of collectives vs {}", y.describe()))
            }
        }
    }
    None
}

/// Structural side conditions every collective must satisfy for the
/// rendezvous argument to hold on `mesh`.
pub fn check_structure(func: &Func, mesh: &Mesh) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for op_id in func.op_ids() {
        let op = func.op(op_id);
        if let (OpKind::For { trip_count: 0 }, Some(region)) = (&op.kind, &op.region) {
            if region.body.iter().any(|&b| func.op(b).kind.is_collective()) {
                diags.push(
                    Diagnostic::new(
                        Severity::Warning,
                        "collective-dead-in-zero-trip-loop",
                        "collectives inside a zero-trip loop never execute",
                    )
                    .at_op(op_path(func, op_id))
                    .at_loc(func.op_loc(op_id)),
                );
            }
        }
        let OpKind::Collective(c) = &op.kind else {
            continue;
        };
        let at = |d: Diagnostic| d.at_op(op_path(func, op_id)).at_loc(func.op_loc(op_id));
        // Raw (pre-dedup) axis uses: an axis appearing twice in one
        // collective double-counts its group and breaks shard layout.
        let raw: Vec<&Axis> = match c {
            Collective::AllReduce { axes, .. } | Collective::AllToAll { axes, .. } => {
                axes.iter().collect()
            }
            Collective::AllGather { dim_axes }
            | Collective::AllSlice { dim_axes }
            | Collective::ReduceScatter { dim_axes, .. } => dim_axes.iter().flatten().collect(),
        };
        for (i, axis) in raw.iter().enumerate() {
            if raw[..i].contains(axis) {
                diags.push(at(Diagnostic::new(
                    Severity::Error,
                    "collective-duplicate-axis",
                    format!("axis \"{axis}\" appears more than once in one collective"),
                )));
            }
        }
        if raw.is_empty() {
            diags.push(at(Diagnostic::new(
                Severity::Warning,
                "collective-no-axes",
                "collective communicates over no axes (no-op)",
            )));
        }
        for axis in c.axes() {
            match mesh.axis_size(&axis) {
                Err(_) => diags.push(at(Diagnostic::new(
                    Severity::Error,
                    "collective-unknown-axis",
                    format!("mesh {mesh} has no axis \"{axis}\""),
                ))),
                Ok(1) => diags.push(at(Diagnostic::new(
                    Severity::Warning,
                    "collective-degenerate-axis",
                    format!("collective over size-1 axis \"{axis}\" moves no data"),
                ))),
                Ok(_) => {}
            }
        }
        if let Collective::AllToAll {
            src_dim, dst_dim, ..
        } = c
        {
            if src_dim == dst_dim {
                diags.push(at(Diagnostic::new(
                    Severity::Warning,
                    "collective-trivial-all-to-all",
                    format!("all_to_all with src_dim == dst_dim == {src_dim} is an identity"),
                )));
            }
        }
    }
    diags
}

/// Flattens a trace by unrolling loops; `None` when the unrolled length
/// exceeds `cap` (the caller falls back to structural matching).
fn flatten(trace: &[Event], cap: usize) -> Option<Vec<CollectiveEvent>> {
    fn walk(trace: &[Event], cap: usize, out: &mut Vec<CollectiveEvent>) -> bool {
        for ev in trace {
            match ev {
                Event::Collective(c) => {
                    if out.len() >= cap {
                        return false;
                    }
                    out.push(c.clone());
                }
                Event::Loop { trip_count, body } => {
                    for _ in 0..*trip_count {
                        if !walk(body, cap, out) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }
    let mut out = Vec::new();
    walk(trace, cap, &mut out).then_some(out)
}

/// Per-axis projected-sequence comparison — the structural necessary
/// condition, and the source of readable mismatch messages.
fn per_axis_mismatches(traces: &[Vec<Event>], mesh: &Mesh) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (axis, _) in mesh.axes() {
        let projected: Vec<Vec<Event>> = traces.iter().map(|t| project(t, axis)).collect();
        let groups = mesh
            .collective_groups(std::slice::from_ref(axis))
            .expect("axis comes from the mesh");
        for group in groups {
            let leader = group[0];
            for &member in &group[1..] {
                if let Some(diff) = first_divergence(&projected[leader], &projected[member]) {
                    diags.push(Diagnostic::new(
                        Severity::Error,
                        "collective-mismatch",
                        format!(
                            "devices {leader} and {member} disagree on the collective \
                             sequence over axis \"{axis}\": {diff} — the threaded \
                             runtime would deadlock at this rendezvous"
                        ),
                    ));
                    break; // one divergence per group is enough signal
                }
            }
        }
    }
    diags
}

/// Abstractly executes the rendezvous system: a collective completes
/// when it is at the head of every participant's trace and all heads
/// agree. Blocking rendezvous is monotone (completing an enabled
/// collective never disables another), so greedy completion is a sound
/// *and* complete deadlock check: the traces drain fully iff no
/// schedule deadlocks.
fn rendezvous_deadlock(queues: &mut [Vec<CollectiveEvent>], mesh: &Mesh) -> Option<String> {
    let mut cursor = vec![0usize; queues.len()];
    loop {
        let mut progressed = false;
        for d in 0..queues.len() {
            let Some(head) = queues[d].get(cursor[d]) else {
                continue;
            };
            let group = mesh
                .collective_groups(&head.axes)
                .ok()?
                .into_iter()
                .find(|g| g.contains(&d))
                .expect("every device is in some group");
            let enabled = group.iter().all(|&peer| {
                queues[peer]
                    .get(cursor[peer])
                    .is_some_and(|h| h.matches(head))
            });
            if enabled {
                for &peer in &group {
                    cursor[peer] += 1;
                }
                progressed = true;
            }
        }
        if !progressed {
            let blocked: Vec<String> = queues
                .iter()
                .zip(&cursor)
                .enumerate()
                .filter_map(|(d, (q, &c))| {
                    q.get(c)
                        .map(|h| format!("device {d} blocked at {}", h.describe()))
                })
                .collect();
            if blocked.is_empty() {
                return None; // all traces drained: deadlock-free
            }
            return Some(blocked.join("; "));
        }
    }
}

/// Upper bound on unrolled trace length before the checker falls back
/// from exact abstract execution to structural matching.
const UNROLL_CAP: usize = 100_000;

/// Checks that per-device traces rendezvous without deadlock.
/// `traces[d]` is device `d`'s trace.
///
/// Identical traces (the SPMD case) pass by symmetry. Differing traces
/// are checked two ways: per-axis projected sequences must agree within
/// every collective group (and produce pointed diagnostics when they do
/// not), and an abstract execution of the rendezvous system must drain
/// every trace — which also catches cross-axis cyclic waits that
/// per-axis matching cannot see.
pub fn check_device_traces(traces: &[Vec<Event>], mesh: &Mesh) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    if traces.len() != mesh.num_devices() {
        diags.push(Diagnostic::new(
            Severity::Error,
            "collective-trace-arity",
            format!(
                "{} traces supplied for a mesh of {} devices",
                traces.len(),
                mesh.num_devices()
            ),
        ));
        return diags;
    }
    if traces.iter().all(|t| t == &traces[0]) {
        // Every device issues the identical sequence: each rendezvous
        // pairs the same head on all participants, by symmetry.
        return diags;
    }
    diags.extend(per_axis_mismatches(traces, mesh));
    let flat: Option<Vec<Vec<CollectiveEvent>>> =
        traces.iter().map(|t| flatten(t, UNROLL_CAP)).collect();
    match flat {
        Some(mut queues) => {
            if let Some(blocked) = rendezvous_deadlock(&mut queues, mesh) {
                if diags.is_empty() {
                    diags.push(Diagnostic::new(
                        Severity::Error,
                        "collective-deadlock",
                        format!(
                            "abstract rendezvous execution wedges with no enabled \
                             collective (a cross-axis cyclic wait): {blocked}"
                        ),
                    ));
                }
            }
        }
        None => diags.push(Diagnostic::new(
            Severity::Warning,
            "collective-trace-truncated",
            format!(
                "unrolled trace exceeds {UNROLL_CAP} events; deadlock check fell \
                 back to per-axis structural matching only"
            ),
        )),
    }
    diags
}

/// The headline check for SPMD programs: structural side conditions plus
/// the rendezvous property with every device running `func`.
pub fn check_deadlock_freedom(func: &Func, mesh: &Mesh) -> Vec<Diagnostic> {
    let mut diags = check_structure(func, mesh);
    if error_count(&diags) > 0 {
        // The trace identity is meaningless over malformed collectives.
        return diags;
    }
    let trace = device_trace(func);
    if trace.is_empty() {
        return diags;
    }
    let traces = vec![trace; mesh.num_devices()];
    diags.extend(check_device_traces(&traces, mesh));
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::{FuncBuilder, TensorType};

    fn mesh() -> Mesh {
        Mesh::new([("B", 2), ("M", 2)]).unwrap()
    }

    fn ar(b: &mut FuncBuilder, x: partir_ir::ValueId, axis: &str) -> partir_ir::ValueId {
        ar_with(b, x, axis, ReduceOp::Sum)
    }

    fn ar_with(
        b: &mut FuncBuilder,
        x: partir_ir::ValueId,
        axis: &str,
        reduce: ReduceOp,
    ) -> partir_ir::ValueId {
        b.collective(
            Collective::AllReduce {
                axes: vec![axis.into()],
                reduce,
            },
            x,
        )
        .unwrap()
    }

    #[test]
    fn spmd_program_is_deadlock_free() {
        let mut b = FuncBuilder::with_mesh("f", mesh());
        let x = b.param("x", TensorType::f32([4, 4]));
        let y = ar(&mut b, x, "B");
        let f = b.build([y]).unwrap();
        let diags = check_deadlock_freedom(&f, &mesh());
        assert_eq!(error_count(&diags), 0, "{diags:?}");
    }

    #[test]
    fn mismatched_order_across_devices_is_flagged() {
        // Two collectives over the SAME axis in opposite orders: devices
        // of one "B" group (e.g. {0, 2}) genuinely rendezvous on
        // different collectives first.
        let build = |first: ReduceOp, second: ReduceOp| {
            let mut b = FuncBuilder::with_mesh("f", mesh());
            let x = b.param("x", TensorType::f32([4, 4]));
            let y = ar_with(&mut b, x, "B", first);
            let z = ar_with(&mut b, y, "B", second);
            b.build([z]).unwrap()
        };
        let fa = build(ReduceOp::Sum, ReduceOp::Max);
        let fb = build(ReduceOp::Max, ReduceOp::Sum);
        let ta = device_trace(&fa);
        let tb = device_trace(&fb);
        let traces = vec![ta.clone(), ta, tb.clone(), tb];
        let diags = check_device_traces(&traces, &mesh());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "collective-mismatch" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn disjoint_axis_reorder_is_deadlock_free() {
        // AR("B");AR("M") vs AR("M");AR("B") across devices does NOT
        // deadlock with this device assignment: per-axis sequences agree
        // within every group and the rendezvous execution drains.
        let build = |first: &str, second: &str| {
            let mut b = FuncBuilder::with_mesh("f", mesh());
            let x = b.param("x", TensorType::f32([4, 4]));
            let y = ar(&mut b, x, first);
            let z = ar(&mut b, y, second);
            b.build([z]).unwrap()
        };
        let ta = device_trace(&build("B", "M"));
        let tb = device_trace(&build("M", "B"));
        let traces = vec![ta.clone(), ta, tb.clone(), tb];
        let diags = check_device_traces(&traces, &mesh());
        assert_eq!(error_count(&diags), 0, "{diags:?}");
    }

    #[test]
    fn cross_axis_cyclic_wait_is_flagged() {
        // Per-axis projections all agree, yet devices wait in a cycle:
        // 0 on 2 (B), 2 on 3 (M), 3 on 1 (B), 1 on 0 (M). Only the
        // abstract rendezvous execution can see this one.
        let build = |first: &str, second: &str| {
            let mut b = FuncBuilder::with_mesh("f", mesh());
            let x = b.param("x", TensorType::f32([4, 4]));
            let y = ar(&mut b, x, first);
            let z = ar(&mut b, y, second);
            b.build([z]).unwrap()
        };
        let ta = device_trace(&build("B", "M"));
        let tb = device_trace(&build("M", "B"));
        let traces = vec![ta.clone(), tb.clone(), tb, ta];
        let diags = check_device_traces(&traces, &mesh());
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "collective-deadlock" && d.severity == Severity::Error),
            "{diags:?}"
        );
    }

    #[test]
    fn unknown_axis_against_foreign_mesh_is_an_error() {
        // Lowered for a mesh with axis "z", linted against one without.
        let build_mesh = Mesh::new([("B", 2), ("z", 2)]).unwrap();
        let mut b = FuncBuilder::with_mesh("f", build_mesh);
        let x = b.param("x", TensorType::f32([4, 4]));
        let y = ar(&mut b, x, "z");
        let f = b.build([y]).unwrap();
        let diags = check_deadlock_freedom(&f, &mesh());
        assert!(
            diags.iter().any(|d| d.rule == "collective-unknown-axis"),
            "{diags:?}"
        );
    }

    #[test]
    fn projection_inlines_single_trip_loops_and_drops_empty_ones() {
        let c = CollectiveEvent {
            mnemonic: "AR",
            axes: vec!["B".into()],
            reduce: Some(ReduceOp::Sum),
            elements: 16,
            path: "@f/%0(all_reduce)".into(),
        };
        let trace = vec![
            Event::Loop {
                trip_count: 1,
                body: vec![Event::Collective(c.clone())],
            },
            Event::Loop {
                trip_count: 5,
                body: vec![],
            },
        ];
        let p = project(&trace, &"B".into());
        assert_eq!(p, vec![Event::Collective(c.clone())]);
        assert!(project(&trace, &"M".into()).is_empty());
        assert!(first_divergence(&p, &p).is_none());
    }

    #[test]
    fn trip_count_mismatch_diverges() {
        let c = |elems: usize| {
            Event::Collective(CollectiveEvent {
                mnemonic: "AG",
                axes: vec!["B".into()],
                reduce: None,
                elements: elems,
                path: String::new(),
            })
        };
        let la = vec![Event::Loop {
            trip_count: 2,
            body: vec![c(8)],
        }];
        let lb = vec![Event::Loop {
            trip_count: 3,
            body: vec![c(8)],
        }];
        let d = first_divergence(&la, &lb).unwrap();
        assert!(d.contains("trip counts disagree"), "{d}");
        // Payload mismatch inside matching loops also diverges.
        let lc = vec![Event::Loop {
            trip_count: 2,
            body: vec![c(16)],
        }];
        assert!(first_divergence(&la, &lc)
            .unwrap()
            .contains("inside a 2-trip loop"));
    }
}
