//! Sharding-consistency checks over `partir_core` propagation results,
//! before SPMD lowering.
//!
//! Errors are states lowering or execution cannot handle: tile entries
//! pointing at out-of-range dimensions, axes missing from the mesh, a
//! dimension not divisible by its tiling axes, or one value acquiring an
//! axis twice. The `Partitioning` action API refuses to *create* such
//! states, so on healthy pipelines these never fire — they exist to
//! guard hand-constructed or deserialised states and to gate search
//! candidates cheaply (see `partir_sched`).
//!
//! Warnings surface what propagation left behind: unresolved TMR
//! conflicts (several candidate entries for one op/axis — the paper
//! reports these to the user rather than resolving them heuristically).
//! An `Info` summarises how many operand reshards lowering will insert.

use partir_core::{OpAxisCtx, Partitioning};
use partir_ir::verify::op_path;
use partir_ir::{Func, ValueId};
use partir_mesh::Axis;

use crate::diag::{Diagnostic, Severity};

/// Checks one propagated partitioning for consistency.
pub fn check_partitioning(func: &Func, part: &Partitioning) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    let mesh = part.mesh();
    for v in func.value_ids() {
        let ctx = part.value_ctx(v);
        if ctx.is_empty() {
            continue;
        }
        let rank = func.value_type(v).rank();
        let dims = func.value_type(v).shape.dims().to_vec();
        let name = describe_value(func, v);
        let mut seen: Vec<&Axis> = Vec::new();
        let mut dim_products: Vec<usize> = vec![1; rank];
        for (axis, kind) in ctx.entries() {
            if seen.contains(&axis) {
                diags.push(Diagnostic::new(
                    Severity::Error,
                    "sharding-duplicate-axis",
                    format!("{name} acquires axis \"{axis}\" more than once"),
                ));
            }
            seen.push(axis);
            let size = match mesh.axis_size(axis) {
                Ok(s) => s,
                Err(_) => {
                    diags.push(Diagnostic::new(
                        Severity::Error,
                        "sharding-unknown-axis",
                        format!("{name} is sharded over \"{axis}\", absent from mesh {mesh}"),
                    ));
                    continue;
                }
            };
            if let partir_core::ShardKind::Tile { dim } = kind {
                if *dim >= rank {
                    diags.push(Diagnostic::new(
                        Severity::Error,
                        "sharding-dim-out-of-range",
                        format!("{name} tiles dimension {dim} over \"{axis}\" but has rank {rank}"),
                    ));
                    continue;
                }
                dim_products[*dim] *= size;
            }
        }
        for (dim, product) in dim_products.iter().enumerate() {
            if *product > 1 && !dims[dim].is_multiple_of(*product) {
                diags.push(Diagnostic::new(
                    Severity::Error,
                    "sharding-indivisible",
                    format!(
                        "{name} dimension {dim} of size {} is not divisible by its \
                         tiling factor {product}",
                        dims[dim]
                    ),
                ));
            }
        }
    }
    for conflict in part.conflicts() {
        diags.push(
            Diagnostic::new(
                Severity::Warning,
                "sharding-conflict",
                format!(
                    "propagation left an unresolved conflict: {}",
                    conflict.describe(func)
                ),
            )
            .at_op(op_path(func, conflict.op))
            .at_loc(func.op_loc(conflict.op)),
        );
    }
    let reshards = count_reshards(func, part);
    if reshards > 0 {
        diags.push(Diagnostic::new(
            Severity::Info,
            "sharding-reshards",
            format!("lowering will insert reshard collectives on {reshards} operand(s)"),
        ));
    }
    diags
}

/// Error-severity findings only — the cheap legality gate `partir_sched`
/// applies to search candidates before paying for lower + simulate.
pub fn legality_errors(func: &Func, part: &Partitioning) -> Vec<Diagnostic> {
    let mut diags = check_partitioning(func, part);
    diags.retain(|d| d.severity == Severity::Error);
    diags
}

/// Whether a propagated state passes every Error-severity check.
pub fn is_legal(func: &Func, part: &Partitioning) -> bool {
    legality_errors(func, part).is_empty()
}

/// Operands whose stored layout differs from the layout their consuming
/// op requires — each costs an `all_gather`/`all_slice` pair at lowering.
fn count_reshards(func: &Func, part: &Partitioning) -> usize {
    let mut n = 0;
    for op_id in func.op_ids() {
        let op = func.op(op_id);
        if op.region.is_some() {
            continue; // loop inits reshard against region params, not a TMR entry
        }
        for (i, &operand) in op.operands.iter().enumerate() {
            let rank = func.value_type(operand).rank();
            let mut required: Vec<Vec<Axis>> = vec![Vec::new(); rank];
            for (axis, axis_ctx) in part.op_ctx(op_id).entries() {
                let OpAxisCtx::Entry(e) = axis_ctx;
                if let Some(Some(d)) = e.operands.get(i) {
                    required[*d].push(axis.clone());
                }
            }
            if part.value_ctx(operand).dim_axes(rank) != required {
                n += 1;
            }
        }
    }
    n
}

fn describe_value(func: &Func, v: ValueId) -> String {
    match &func.value(v).name {
        Some(name) => format!("value %{name}"),
        None => format!("value v{}", v.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::{FuncBuilder, TensorType};
    use partir_mesh::Mesh;

    fn matmul_func() -> (ValueId, ValueId, partir_ir::Func) {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([8, 4]));
        let w = b.param("w", TensorType::f32([4, 4]));
        let y = b.matmul(x, w).unwrap();
        (x, w, b.build([y]).unwrap())
    }

    #[test]
    fn healthy_partitioning_is_clean() {
        let (x, _, f) = matmul_func();
        let mesh = Mesh::new([("B", 2), ("M", 2)]).unwrap();
        let mut p = Partitioning::new(&f, mesh).unwrap();
        p.tile(&f, x, 0, &"B".into()).unwrap();
        p.propagate(&f);
        let diags = check_partitioning(&f, &p);
        assert_eq!(crate::diag::error_count(&diags), 0, "{diags:?}");
        assert!(is_legal(&f, &p));
    }

    #[test]
    fn conflicting_tilings_warn() {
        // Both matmul operands tile their *free* dimension over the same
        // axis: the op gets two TMR candidates for "B" and propagation
        // records a conflict instead of resolving it.
        let (x, w, f) = matmul_func();
        let mesh = Mesh::new([("B", 2), ("M", 2)]).unwrap();
        let mut p = Partitioning::new(&f, mesh).unwrap();
        p.tile(&f, x, 0, &"B".into()).unwrap();
        p.tile(&f, w, 1, &"B".into()).unwrap();
        let report = p.propagate(&f);
        assert!(
            !report.conflicts.is_empty() || !p.conflicts().is_empty(),
            "expected a propagation conflict"
        );
        let diags = check_partitioning(&f, &p);
        assert!(
            diags
                .iter()
                .any(|d| d.rule == "sharding-conflict" && d.severity == Severity::Warning),
            "{diags:?}"
        );
    }

    #[test]
    fn reshards_surface_as_info() {
        // Tiling only the contracting-dim weight forces the lowering to
        // reshard (gather) somewhere.
        let (x, _, f) = matmul_func();
        let mesh = Mesh::new([("B", 2), ("M", 2)]).unwrap();
        let mut p = Partitioning::new(&f, mesh).unwrap();
        p.tile(&f, x, 0, &"B".into()).unwrap();
        // No propagation: the op ctx stays empty while x is sharded, so
        // the matmul needs x gathered back.
        let diags = check_partitioning(&f, &p);
        assert!(
            diags.iter().any(|d| d.rule == "sharding-reshards"),
            "{diags:?}"
        );
    }
}
