//! Forward layout tracking over lowered (device-local) programs.
//!
//! Each value's fact is the per-dimension stack of mesh axes it is
//! currently sliced over, in outer-to-inner order — exactly the
//! [`ValueCtx::dim_axes`] layout `partir_spmd::lower` maintains. The
//! lattice is flat ([`Flat`]): layouts merge to ⊤ when paths disagree or
//! an op's effect on the layout is not tracked (matrix products etc. —
//! their sharding semantics live in the TMR, not here). Collectives have
//! exact transfer functions, so the analysis precisely follows gather /
//! slice / all-to-all chains and catches:
//!
//! * gathering axes a value is not sliced over (`layout-bad-gather`) —
//!   the "dropped axis" class of bugs, where data is concatenated from
//!   devices that hold identical replicas;
//! * slicing along an axis that already slices the value
//!   (`layout-double-slice`), which silently drops shards;
//! * elementwise ops combining operands with different layouts
//!   (`layout-elementwise-mismatch`);
//! * gather/slice round trips that cancel (`layout-redundant-pair`);
//! * results whose computed layout contradicts the program's declared
//!   output sharding (`layout-result-mismatch`).

use partir_core::ValueCtx;
use partir_ir::verify::op_path;
use partir_ir::{Collective, Func, OpId, OpKind, ValueDef};
use partir_mesh::Axis;

use crate::dataflow::{forward_fixpoint, Fact, FactMap, Flat, ForwardAnalysis};
use crate::diag::{Diagnostic, Severity};

/// Per-dimension axis stacks, outer-to-inner.
pub type DimLayout = Vec<Vec<Axis>>;

type LayoutFact = Flat<DimLayout>;

/// Applies a collective's effect to a known operand layout, or explains
/// why the collective is inconsistent with it.
fn apply_collective(c: &Collective, layout: &DimLayout) -> Result<DimLayout, String> {
    let mut out = layout.clone();
    let strip_suffix = |stack: &mut Vec<Axis>, axes: &[Axis], dim: usize| -> Result<(), String> {
        if axes.is_empty() {
            return Ok(());
        }
        if stack.len() < axes.len() || &stack[stack.len() - axes.len()..] != axes {
            return Err(format!(
                "gathers axes [{}] in dim {dim}, but the value is sliced over [{}] there",
                join(axes),
                join(stack)
            ));
        }
        stack.truncate(stack.len() - axes.len());
        Ok(())
    };
    let push_axes = |out: &mut DimLayout, axes: &[Axis], dim: usize| -> Result<(), String> {
        for a in axes {
            if out.iter().any(|stack| stack.contains(a)) {
                return Err(format!(
                    "slices dim {dim} over axis \"{a}\" which already slices the value"
                ));
            }
            out[dim].push(a.clone());
        }
        Ok(())
    };
    match c {
        Collective::AllReduce { .. } => {}
        Collective::AllGather { dim_axes } => {
            for (d, axes) in dim_axes.iter().enumerate() {
                strip_suffix(&mut out[d], axes, d)?;
            }
        }
        Collective::AllSlice { dim_axes } | Collective::ReduceScatter { dim_axes, .. } => {
            for (d, axes) in dim_axes.iter().enumerate() {
                push_axes(&mut out, axes, d)?;
            }
        }
        Collective::AllToAll {
            src_dim,
            dst_dim,
            axes,
        } => {
            strip_suffix(&mut out[*src_dim], axes, *src_dim)?;
            push_axes(&mut out, axes, *dst_dim)?;
        }
    }
    Ok(out)
}

fn join(axes: &[Axis]) -> String {
    axes.iter()
        .map(|a| format!("\"{a}\""))
        .collect::<Vec<_>>()
        .join(", ")
}

struct LayoutAnalysis {
    input_layouts: Option<Vec<DimLayout>>,
}

impl ForwardAnalysis for LayoutAnalysis {
    type Fact = LayoutFact;

    fn entry(&self, _func: &Func, index: usize, _v: partir_ir::ValueId) -> LayoutFact {
        match &self.input_layouts {
            Some(layouts) => Flat::Known(layouts[index].clone()),
            None => Flat::Top,
        }
    }

    fn loop_index(&self, _func: &Func, _v: partir_ir::ValueId) -> LayoutFact {
        Flat::Known(Vec::new()) // rank-0 scalar: trivially replicated
    }

    fn transfer(&self, func: &Func, op: OpId, operands: &[LayoutFact]) -> Vec<LayoutFact> {
        let data = func.op(op);
        let fact = match &data.kind {
            // Nullary ops materialise the full value on every device.
            _ if data.operands.is_empty() => {
                let rank = func.value_type(data.results[0]).rank();
                Flat::Known(vec![Vec::new(); rank])
            }
            OpKind::Collective(c) => match &operands[0] {
                Flat::Known(layout) => match apply_collective(c, layout) {
                    Ok(out) => Flat::Known(out),
                    Err(_) => Flat::Top, // reported by the check pass
                },
                other => other.clone(),
            },
            OpKind::Transpose { perm } => match &operands[0] {
                Flat::Known(layout) => {
                    Flat::Known(perm.iter().map(|&p| layout[p].clone()).collect())
                }
                other => other.clone(),
            },
            k if k.is_elementwise() => {
                let mut fact = LayoutFact::bottom();
                for f in operands {
                    fact.join(f);
                }
                fact
            }
            // Compute ops change sharding per the TMR; untracked here.
            _ => Flat::Top,
        };
        vec![fact; data.results.len()]
    }
}

/// Runs the layout analysis and reports inconsistencies.
///
/// `input_layouts` / `output_layouts` are the program's declared
/// interface shardings (e.g. an `SpmdProgram`'s input/output contexts);
/// pass `None` when unknown, which turns off the corresponding checks.
pub fn check_layouts(
    func: &Func,
    input_layouts: Option<&[ValueCtx]>,
    output_layouts: Option<&[ValueCtx]>,
) -> Vec<Diagnostic> {
    let to_layouts = |ctxs: &[ValueCtx], values: &[partir_ir::ValueId]| -> Vec<DimLayout> {
        ctxs.iter()
            .zip(values)
            .map(|(ctx, &v)| ctx.dim_axes(func.value_type(v).rank()))
            .collect()
    };
    let analysis = LayoutAnalysis {
        input_layouts: input_layouts.map(|ctxs| to_layouts(ctxs, func.params())),
    };
    let facts = forward_fixpoint(func, &analysis);
    let mut diags = check_pass(func, &facts);
    if let Some(ctxs) = output_layouts {
        let declared = to_layouts(ctxs, func.results());
        for (i, (&r, want)) in func.results().iter().zip(&declared).enumerate() {
            if let Flat::Known(got) = facts.get(r) {
                if got != want {
                    diags.push(Diagnostic::new(
                        Severity::Error,
                        "layout-result-mismatch",
                        format!(
                            "output #{i} is sliced over {:?} but its declared sharding \
                             is {:?} — an axis was dropped or invented on the way out",
                            summarise(got),
                            summarise(want)
                        ),
                    ));
                }
            }
        }
    }
    diags
}

fn summarise(layout: &DimLayout) -> Vec<String> {
    layout
        .iter()
        .map(|stack| {
            if stack.is_empty() {
                "-".to_string()
            } else {
                stack
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join("·")
            }
        })
        .collect()
}

/// Single post-fixpoint walk emitting diagnostics from the final facts.
fn check_pass(func: &Func, facts: &FactMap<LayoutFact>) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for op_id in func.op_ids() {
        let data = func.op(op_id);
        let at = |d: Diagnostic| d.at_op(op_path(func, op_id)).at_loc(func.op_loc(op_id));
        if let OpKind::Collective(c) = &data.kind {
            if let Flat::Known(layout) = facts.get(data.operands[0]) {
                if let Err(why) = apply_collective(c, layout) {
                    let rule = if why.contains("gathers") {
                        "layout-bad-gather"
                    } else {
                        "layout-double-slice"
                    };
                    diags.push(at(Diagnostic::new(Severity::Error, rule, why)));
                }
            }
            // A slice undoing an immediately preceding gather of the
            // same axes is a round trip the fusion pass should have
            // cancelled — all the traffic buys nothing.
            if let (Collective::AllSlice { dim_axes }, ValueDef::OpResult { op: prev, .. }) =
                (c, &func.value(data.operands[0]).def)
            {
                if let OpKind::Collective(Collective::AllGather {
                    dim_axes: prev_axes,
                }) = &func.op(*prev).kind
                {
                    if dim_axes == prev_axes {
                        diags.push(at(Diagnostic::new(
                            Severity::Warning,
                            "layout-redundant-pair",
                            "all_slice exactly undoes the preceding all_gather; \
                             the round trip moves data for nothing",
                        )));
                    }
                }
            }
        } else if data.kind.is_elementwise() && data.operands.len() > 1 {
            let known: Vec<&DimLayout> = data
                .operands
                .iter()
                .filter_map(|&v| match facts.get(v) {
                    Flat::Known(l) => Some(l),
                    _ => None,
                })
                .collect();
            if known.len() == data.operands.len() && known.windows(2).any(|w| w[0] != w[1]) {
                diags.push(at(Diagnostic::new(
                    Severity::Warning,
                    "layout-elementwise-mismatch",
                    format!(
                        "elementwise operands carry different layouts: {:?}",
                        known.iter().map(|l| summarise(l)).collect::<Vec<_>>()
                    ),
                )));
            }
        }
    }
    diags
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::{FuncBuilder, TensorType};
    use partir_mesh::Mesh;

    fn mesh() -> Mesh {
        Mesh::new([("B", 2), ("M", 2)]).unwrap()
    }

    fn sharded_ctx(axis: &str, dim: usize) -> ValueCtx {
        // Build a ValueCtx through the public core API: tile a dummy
        // one-op function's parameter and read the ctx back.
        let mut b = FuncBuilder::new("ctx");
        let x = b.param("x", TensorType::f32([8, 8]));
        let y = b.neg(x).unwrap();
        let f = b.build([y]).unwrap();
        let mut p = partir_core::Partitioning::new(&f, mesh()).unwrap();
        p.tile(&f, x, dim, &axis.into()).unwrap();
        p.value_ctx(x).clone()
    }

    #[test]
    fn gather_of_unsliced_axis_is_flagged() {
        // Input is replicated, but the program gathers over "B".
        let mut b = FuncBuilder::with_mesh("f", mesh());
        let x = b.param("x", TensorType::f32([4, 4]));
        let y = b
            .collective(
                Collective::AllGather {
                    dim_axes: vec![vec!["B".into()], vec![]],
                },
                x,
            )
            .unwrap();
        let f = b.build([y]).unwrap();
        let replicated = ValueCtx::new();
        let diags = check_layouts(&f, Some(std::slice::from_ref(&replicated)), None);
        assert!(
            diags.iter().any(|d| d.rule == "layout-bad-gather"),
            "{diags:?}"
        );
    }

    #[test]
    fn double_slice_is_flagged() {
        let mut b = FuncBuilder::with_mesh("f", mesh());
        let x = b.param("x", TensorType::f32([8, 8]));
        let s1 = b
            .collective(
                Collective::AllSlice {
                    dim_axes: vec![vec!["B".into()], vec![]],
                },
                x,
            )
            .unwrap();
        let s2 = b
            .collective(
                Collective::AllSlice {
                    dim_axes: vec![vec![], vec!["B".into()]],
                },
                s1,
            )
            .unwrap();
        let f = b.build([s2]).unwrap();
        let replicated = ValueCtx::new();
        let diags = check_layouts(&f, Some(std::slice::from_ref(&replicated)), None);
        assert!(
            diags.iter().any(|d| d.rule == "layout-double-slice"),
            "{diags:?}"
        );
    }

    #[test]
    fn dropped_axis_shows_as_result_mismatch() {
        // Input sharded over "B" in dim 0; the program never gathers it
        // but declares the output replicated.
        let mut b = FuncBuilder::with_mesh("f", mesh());
        let x = b.param("x", TensorType::f32([4, 4]));
        let y = b.neg(x).unwrap();
        let f = b.build([y]).unwrap();
        let in_ctx = sharded_ctx("B", 0);
        let out_ctx = ValueCtx::new();
        let diags = check_layouts(
            &f,
            Some(std::slice::from_ref(&in_ctx)),
            Some(std::slice::from_ref(&out_ctx)),
        );
        assert!(
            diags.iter().any(|d| d.rule == "layout-result-mismatch"),
            "{diags:?}"
        );
    }

    #[test]
    fn redundant_gather_slice_pair_warns() {
        let mut b = FuncBuilder::with_mesh("f", mesh());
        let x = b.param("x", TensorType::f32([4, 4]));
        let g = b
            .collective(
                Collective::AllGather {
                    dim_axes: vec![vec!["B".into()], vec![]],
                },
                x,
            )
            .unwrap();
        let s = b
            .collective(
                Collective::AllSlice {
                    dim_axes: vec![vec!["B".into()], vec![]],
                },
                g,
            )
            .unwrap();
        let f = b.build([s]).unwrap();
        let in_ctx = sharded_ctx("B", 0);
        let diags = check_layouts(&f, Some(std::slice::from_ref(&in_ctx)), None);
        assert!(
            diags.iter().any(|d| d.rule == "layout-redundant-pair"),
            "{diags:?}"
        );
    }

    #[test]
    fn consistent_round_trip_is_clean() {
        let mut b = FuncBuilder::with_mesh("f", mesh());
        let x = b.param("x", TensorType::f32([4, 4]));
        let g = b
            .collective(
                Collective::AllGather {
                    dim_axes: vec![vec!["B".into()], vec![]],
                },
                x,
            )
            .unwrap();
        let s = b
            .collective(
                Collective::AllSlice {
                    dim_axes: vec![vec![], vec!["M".into()]],
                },
                g,
            )
            .unwrap();
        let f = b.build([s]).unwrap();
        let in_ctx = sharded_ctx("B", 0);
        let out_ctx = sharded_ctx("M", 1);
        let diags = check_layouts(
            &f,
            Some(std::slice::from_ref(&in_ctx)),
            Some(std::slice::from_ref(&out_ctx)),
        );
        assert_eq!(crate::diag::error_count(&diags), 0, "{diags:?}");
    }
}
