//! Static SPMD legality and resource analysis for PartIR-rs.
//!
//! The paper's workflow leans on *incremental feedback*: after every
//! tactic the user sees what the partitioner did and what it will cost.
//! This crate adds the static half of that feedback loop — analyses that
//! prove properties of partitioned and lowered programs without running
//! them:
//!
//! * [`dataflow`] — a small lattice-based framework (forward fixpoint
//!   with precise `for`-region feedback, backward fixpoint over the
//!   simulator's linearisation) the other analyses are built on;
//! * [`collective`] — proves every device issues the same per-axis
//!   collective sequence, so the threaded runtime cannot deadlock;
//! * [`sharding`] — consistency of `partir_core` propagation results
//!   (illegal tile entries, unresolved conflicts, implied reshards);
//! * [`layout`] — forward layout tracking through lowered programs
//!   (dropped axes, double slicing, redundant gather/slice round trips);
//! * [`memory`] — a static peak-memory bound guaranteed to dominate
//!   `partir_sim`'s simulated peak;
//! * [`plan`] — translation validation of *compiled execution plans*:
//!   a happens-before race detector over arena-slot effects and a
//!   cross-device rendezvous-deadlock verifier for the overlap
//!   scheduler's output ([`plan::verify_plan`]);
//! * [`objective`] — a static search objective: communication and
//!   compute costs read straight off a propagated `Partitioning`
//!   (no lowering, no simulation), plus action equivalence classes
//!   keyed by propagated fingerprints;
//! * [`lint`] — aggregation of all of the above into the structured
//!   [`Diagnostic`] stream the `partir-lint` binary prints.
//!
//! `partir-sched` uses [`sharding::is_legal`] to reject illegal search
//! candidates before paying for lowering and simulation, and
//! `partir-spmd` / `partir-sim` re-assert the collective and memory
//! contracts in debug builds.
//!
//! # Examples
//!
//! ```
//! use partir_analysis::{diag::Severity, lint};
//! use partir_core::Partitioning;
//! use partir_ir::{FuncBuilder, TensorType};
//! use partir_mesh::Mesh;
//!
//! let mut b = FuncBuilder::new("main");
//! let x = b.param("x", TensorType::f32([8, 4]));
//! let w = b.param("w", TensorType::f32([4, 4]));
//! let y = b.matmul(x, w)?;
//! let f = b.build([y])?;
//!
//! let mesh = Mesh::new([("B", 2), ("M", 2)]).unwrap();
//! let mut part = Partitioning::new(&f, mesh)?;
//! part.tile(&f, x, 0, &"B".into())?;
//! part.propagate(&f);
//!
//! let diags = lint::lint_partitioning(&f, &part);
//! assert!(diags.iter().all(|d| d.severity < Severity::Error));
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

pub mod collective;
pub mod dataflow;
pub mod diag;
pub mod layout;
pub mod lint;
pub mod memory;
pub mod objective;
pub mod plan;
pub mod sharding;

pub use diag::{error_count, max_severity, Diagnostic, Severity};
pub use memory::{liveness_frees, static_peak_bound};
pub use objective::{
    equivalence_classes, static_cost, static_cost_with, ActionClass, ObjectiveConfig, StaticCost,
    StaticObjective, TileCandidate,
};
pub use plan::{verify_plan, PlanView};
pub use sharding::is_legal;
