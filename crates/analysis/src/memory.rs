//! Static peak-memory bound via backward liveness.
//!
//! The bound walks the same linearisation as
//! `partir_sim::peak_memory_bytes` (region bodies inline once,
//! before their op), uses the same liveness conventions (parameters and
//! results pinned to the end, unused values never freed), and charges
//! the same allocations — *plus* the loop region parameters the
//! simulator treats as zero-cost aliases. The static resident set is
//! therefore pointwise ≥ the simulated one, so
//!
//! > `static_peak_bound(f) >= partir_sim::peak_memory_bytes(f)`
//!
//! holds **by construction** for every function — the contract
//! `partir-sim` re-asserts in debug builds and the zoo tests verify over
//! every model/mesh pair. Liveness itself is an instance of the
//! backward dataflow solver with a max-position lattice.

use partir_ir::{Func, OpId, OpKind, ValueDef, ValueId};

use crate::dataflow::{backward_fixpoint, BackwardAnalysis, Fact, Linearization};

/// Last-use position lattice: ⊥ = never used (kept resident), otherwise
/// the maximum linearised position that reads the value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct LastUse(Option<usize>);

impl Fact for LastUse {
    fn bottom() -> Self {
        LastUse(None)
    }

    fn join(&mut self, other: &Self) -> bool {
        match (self.0, other.0) {
            (_, None) => false,
            (None, Some(_)) => {
                *self = *other;
                true
            }
            (Some(a), Some(b)) => {
                if b > a {
                    self.0 = Some(b);
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Liveness as a backward dataflow: every use site contributes its
/// position; results and parameters are used "at the end".
struct Liveness {
    end: usize,
}

impl BackwardAnalysis for Liveness {
    type Fact = LastUse;

    fn exit(&self, _func: &Func, _v: ValueId) -> LastUse {
        LastUse(Some(self.end))
    }

    fn use_site(&self, _func: &Func, _op: OpId, pos: usize, _v: ValueId) -> LastUse {
        LastUse(Some(pos))
    }
}

/// The liveness solution in free-list form: the linearisation the bound
/// walks plus, for every value, `Some(pos)` when the value's last use is
/// at linearised position `pos` (and it may be freed right after), or
/// `None` when it stays resident to the end (parameters, results, and
/// never-used values).
///
/// This is the exact schedule [`static_peak_bound`] charges; the SPMD
/// plan compiler replays the same walk with its own byte accounting to
/// cross-check its arena layout against this analysis.
pub fn liveness_frees(func: &Func) -> (Linearization, Vec<Option<usize>>) {
    let lin = Linearization::of(func);
    let end = lin.len();
    let live = backward_fixpoint(func, &lin, &Liveness { end });
    let frees = func
        .value_ids()
        .map(|v| match live.get(v).0 {
            // ⊥ (never used) and end-pinned values stay resident.
            Some(pos) if pos < end => Some(pos),
            _ => None,
        })
        .collect();
    (lin, frees)
}

/// An upper bound on the peak device memory (bytes) of `func`,
/// guaranteed to dominate the simulator's estimate.
pub fn static_peak_bound(func: &Func) -> u64 {
    let (lin, freed) = liveness_frees(func);
    let end = lin.len();

    let bytes_of = |v: ValueId| func.value_type(v).size_bytes() as u64;
    let freed_at = |v: ValueId| -> Option<usize> { freed[v.0 as usize] };

    let mut current: u64 = func.params().iter().map(|&p| bytes_of(p)).sum();
    let mut peak = current;
    let mut frees: Vec<Vec<ValueId>> = vec![Vec::new(); end + 1];
    for v in func.value_ids() {
        if let Some(pos) = freed_at(v) {
            frees[pos].push(v);
        }
    }
    let mut alive = vec![false; func.num_values()];
    for &p in func.params() {
        alive[p.0 as usize] = true;
    }
    for (pos, &op_id) in lin.order().iter().enumerate() {
        let op = func.op(op_id);
        for &r in &op.results {
            if !alive[r.0 as usize] {
                alive[r.0 as usize] = true;
                current += bytes_of(r);
            }
        }
        // Where the simulator treats loop region params as free aliases
        // of their carried inputs, the bound charges them — the one
        // place the two walks deliberately differ, and what makes the
        // bound an over-approximation.
        if matches!(op.kind, OpKind::For { .. }) {
            if let Some(region) = &op.region {
                for &p in &region.params {
                    if !alive[p.0 as usize] {
                        alive[p.0 as usize] = true;
                        current += bytes_of(p);
                    }
                }
            }
        }
        peak = peak.max(current);
        for &v in &frees[pos] {
            if alive[v.0 as usize] {
                alive[v.0 as usize] = false;
                current = current.saturating_sub(bytes_of(v));
            }
        }
    }
    peak
}

/// The extra bytes the bound charges beyond the aliasing-aware
/// simulation: the region parameters live at the peak. Exposed so lint
/// output can explain the bound's slack.
pub fn region_param_bytes(func: &Func) -> u64 {
    func.value_ids()
        .filter(|&v| matches!(func.value(v).def, ValueDef::RegionParam { .. }))
        .map(|v| func.value_type(v).size_bytes() as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::{FuncBuilder, TensorType};

    #[test]
    fn straightline_bound_matches_hand_count() {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([16])); // 64 B pinned
        let y = b.neg(x).unwrap();
        let z = b.neg(y).unwrap(); // y freed after this
        let f = b.build([z]).unwrap();
        assert_eq!(static_peak_bound(&f), 64 * 3);
    }

    #[test]
    fn bound_dominates_simulated_peak() {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([32, 32]));
        let w = b.param("w", TensorType::f32([32, 32]));
        let y = b.matmul(x, w).unwrap();
        let f = b.build([y]).unwrap();
        assert!(static_peak_bound(&f) >= partir_sim::peak_memory_bytes(&f));
    }

    #[test]
    fn loop_programs_charge_region_params() {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([64]));
        let results = b
            .for_loop(4, &[x], |inner, _i, carried| {
                let t = inner.neg(carried[0])?;
                Ok(vec![t])
            })
            .unwrap();
        let f = b.build([results[0]]).unwrap();
        let simulated = partir_sim::peak_memory_bytes(&f);
        let bound = static_peak_bound(&f);
        assert!(bound >= simulated, "bound {bound} < simulated {simulated}");
        // The carried region param (256 B) is exactly the slack.
        assert!(region_param_bytes(&f) >= 256);
        assert!(bound > simulated, "loop bound should be strict");
    }
}
