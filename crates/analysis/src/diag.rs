//! Structured diagnostics shared by every analysis and surfaced by
//! `partir-lint`.
//!
//! A [`Diagnostic`] pins a finding to an op (via the op path produced by
//! [`partir_ir::verify::op_path`]) and, when the program was parsed from
//! text, to a source position. Severities order so callers can filter
//! with `>=` ([`Severity::Error`] is what gates CI).

use std::fmt;

use partir_ir::SrcLoc;

/// How serious a finding is.
///
/// `Error` means the program is illegal — lowering, simulation or the
/// threaded runtime would misbehave. `Warning` flags suspicious but
/// executable constructs (unresolved propagation conflicts, redundant
/// collectives). `Info` is advisory metadata (implied reshards, resource
/// figures).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Advisory only.
    Info,
    /// Suspicious but executable.
    Warning,
    /// Illegal; fails `partir-lint`.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Info => write!(f, "info"),
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One analysis finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Severity class.
    pub severity: Severity,
    /// Stable rule identifier, e.g. `collective-unknown-axis`.
    pub rule: &'static str,
    /// Path of the offending op (`@main/%3(dot)`), when op-specific.
    pub op_path: Option<String>,
    /// Source position, when the function was parsed from text.
    pub loc: Option<SrcLoc>,
    /// Human-readable description.
    pub message: String,
}

impl Diagnostic {
    /// Creates a diagnostic not tied to a particular op.
    pub fn new(severity: Severity, rule: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity,
            rule,
            op_path: None,
            loc: None,
            message: message.into(),
        }
    }

    /// Attaches an op path.
    pub fn at_op(mut self, path: impl Into<String>) -> Self {
        self.op_path = Some(path.into());
        self
    }

    /// Attaches a source position.
    pub fn at_loc(mut self, loc: Option<SrcLoc>) -> Self {
        self.loc = loc;
        self
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]", self.severity, self.rule)?;
        if let Some(path) = &self.op_path {
            write!(f, " {path}")?;
        }
        if let Some(loc) = self.loc {
            write!(f, " (line {loc})")?;
        }
        write!(f, ": {}", self.message)
    }
}

/// The worst severity among `diags`, if any.
pub fn max_severity(diags: &[Diagnostic]) -> Option<Severity> {
    diags.iter().map(|d| d.severity).max()
}

/// Number of [`Severity::Error`] diagnostics.
pub fn error_count(diags: &[Diagnostic]) -> usize {
    diags
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn severities_order() {
        assert!(Severity::Error > Severity::Warning);
        assert!(Severity::Warning > Severity::Info);
    }

    #[test]
    fn display_includes_rule_path_and_loc() {
        let d = Diagnostic::new(Severity::Error, "collective-unknown-axis", "no axis \"z\"")
            .at_op("@main/%2(all_reduce)")
            .at_loc(Some(SrcLoc { line: 4, col: 9 }));
        assert_eq!(
            d.to_string(),
            "error[collective-unknown-axis] @main/%2(all_reduce) (line 4:9): no axis \"z\""
        );
        assert_eq!(
            max_severity(std::slice::from_ref(&d)),
            Some(Severity::Error)
        );
        assert_eq!(error_count(&[d]), 1);
        assert_eq!(max_severity(&[]), None);
    }
}
