//! Aggregated lint entry points — what the `partir-lint` binary and the
//! pipeline debug post-conditions call.

use partir_core::{Partitioning, ValueCtx};
use partir_ir::{Func, IrError};
use partir_mesh::Mesh;

use crate::diag::{Diagnostic, Severity};
use crate::{collective, layout, memory, sharding};

/// Lints a propagated partitioning, before lowering: sharding
/// consistency plus IR verification of the source function.
pub fn lint_partitioning(func: &Func, part: &Partitioning) -> Vec<Diagnostic> {
    let mut diags = verify_diags(func, Some(part.mesh()));
    diags.extend(sharding::check_partitioning(func, part));
    sort(&mut diags);
    diags
}

/// Lints a lowered device-local program: IR verification, collective
/// structure + rendezvous matching, layout tracking, and the static
/// memory bound as an `Info` figure.
///
/// `input_ctxs` / `output_ctxs` are the program's declared interface
/// shardings when known (an `SpmdProgram`'s contexts).
pub fn lint_device_func(
    func: &Func,
    mesh: &Mesh,
    input_ctxs: Option<&[ValueCtx]>,
    output_ctxs: Option<&[ValueCtx]>,
) -> Vec<Diagnostic> {
    let mut diags = verify_diags(func, Some(mesh));
    diags.extend(collective::check_deadlock_freedom(func, mesh));
    diags.extend(layout::check_layouts(func, input_ctxs, output_ctxs));
    diags.push(Diagnostic::new(
        Severity::Info,
        "memory-static-bound",
        format!(
            "static peak-memory bound: {} bytes per device",
            memory::static_peak_bound(func)
        ),
    ));
    sort(&mut diags);
    diags
}

/// Parses a textual device-local program and lints it against `mesh`.
/// Parse failures become a single `Error` diagnostic carrying the
/// source position instead of aborting.
pub fn lint_source(text: &str, mesh: &Mesh) -> Vec<Diagnostic> {
    match partir_ir::parse::parse_func_with_mesh(text, mesh.clone()) {
        Ok(func) => lint_device_func(&func, mesh, None, None),
        Err(err) => {
            let loc = match &err {
                IrError::Parse { line, col, .. } => Some(partir_ir::SrcLoc {
                    line: *line,
                    col: *col,
                }),
                _ => None,
            };
            vec![Diagnostic::new(Severity::Error, "parse-error", err.to_string()).at_loc(loc)]
        }
    }
}

/// IR structural verification, rendered as diagnostics (the verifier's
/// op paths become the diagnostics' locations).
fn verify_diags(func: &Func, mesh: Option<&Mesh>) -> Vec<Diagnostic> {
    match partir_ir::verify::verify_func(func, mesh) {
        Ok(()) => Vec::new(),
        Err(err) => {
            let d = Diagnostic::new(Severity::Error, "ir-verify", err.to_string());
            let d = match err.op_path() {
                Some(path) => d.at_op(path),
                None => d,
            };
            vec![d]
        }
    }
}

/// Severity-descending order, ties kept stable (program order).
fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by_key(|d| std::cmp::Reverse(d.severity));
}

/// Renders diagnostics one per line, worst first.
pub fn render(diags: &[Diagnostic]) -> String {
    diags
        .iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::{FuncBuilder, TensorType};

    #[test]
    fn lint_source_reports_parse_position() {
        let mesh = Mesh::new([("B", 2)]).unwrap();
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([4, 4]));
        let y = b.neg(x).unwrap();
        let f = b.build([y]).unwrap();
        // Corrupt the op mnemonic on line 2 of the printed form.
        let text = partir_ir::print::print_func(&f).replace("neg", "bogus");
        let diags = lint_source(&text, &mesh);
        assert_eq!(diags.len(), 1, "{}", render(&diags));
        assert_eq!(diags[0].rule, "parse-error");
        assert_eq!(diags[0].loc.map(|l| l.line), Some(2));
    }

    #[test]
    fn lint_source_accepts_valid_programs() {
        let mesh = Mesh::new([("B", 2)]).unwrap();
        let mut b = FuncBuilder::with_mesh("f", mesh.clone());
        let x = b.param("x", TensorType::f32([4, 4]));
        let y = b.neg(x).unwrap();
        let f = b.build([y]).unwrap();
        let text = partir_ir::print::print_func(&f);
        let diags = lint_source(&text, &mesh);
        assert_eq!(crate::diag::error_count(&diags), 0, "{}", render(&diags));
    }

    #[test]
    fn device_lint_includes_memory_info() {
        let mesh = Mesh::new([("B", 2)]).unwrap();
        let mut b = FuncBuilder::with_mesh("f", mesh.clone());
        let x = b.param("x", TensorType::f32([4, 4]));
        let y = b.neg(x).unwrap();
        let f = b.build([y]).unwrap();
        let diags = lint_device_func(&f, &mesh, None, None);
        assert!(diags.iter().any(|d| d.rule == "memory-static-bound"));
    }
}
