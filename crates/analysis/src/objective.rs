//! The static search objective (TOAST-style): per-candidate cost read
//! straight off a propagated [`Partitioning`] — no `spmd::lower`, no
//! `sim::evaluate`.
//!
//! The analytical simulator is exact but expensive per candidate: every
//! evaluation builds the device-local function (lowering), rebuilds it
//! again (collective fusion), and only then walks it. This module walks
//! the *original* function once instead, replaying the lowering rules
//! cost-only:
//!
//! * per operand, the reshard from its stored layout (value context) to
//!   the layout the op's loop context requires — common slicing prefix
//!   kept, gather suffix costed with the staged ring `all_gather`
//!   formula, slice suffix free;
//! * `#sum` contexts cost a ring `all_reduce`, with the fusion pass's
//!   `reduce_scatter` rewrite (covered-suffix peeling, residual reduce
//!   and slice) applied analytically;
//! * the gather+slice → `all_to_all` fusion applied analytically inside
//!   each reshard, *and across op boundaries*: when a producer's chain
//!   ends in a bare gather/reduce whose stored value has exactly one
//!   non-escaping, same-body use that reshards by pure slicing, the
//!   fusion pass's cancel / `all_to_all` / `reduce_scatter` rewrites
//!   are replayed on the pair;
//! * compute costed with the same roofline model (local shapes derived
//!   from the layouts, never materialised as IR);
//! * peak memory bounded by the existing liveness walk
//!   ([`crate::memory::liveness_frees`]) charging device-local sizes,
//!   plus the largest gather temporary alive at each op.
//!
//! A search evaluates thousands of candidates of *one* function, so the
//! work is split accordingly: [`StaticObjective`] precomputes everything
//! that depends only on the function (dead-code liveness, the
//! memory-walk linearisation, use sites for cross-op fusion, roofline
//! terms of fully-replicated ops), and [`StaticObjective::cost`] walks
//! one candidate with packed copy-only layouts (axes resolved to small
//! integer ids once per call, fixed-size stacks instead of heap
//! `Vec<Axis>`). Fully replicated ops — the common case away from the
//! sharded data path — take a precomputed fast path.
//!
//! The constants deliberately mirror `partir_sim::SimConfig` — the
//! rank-agreement property tests (`tests/objective_prop.rs`) pin the two
//! models together, and a deliberately mis-weighted objective is caught
//! by the same tests (the mutation check).
//!
//! On top of the cost, [`equivalence_classes`] groups candidate
//! `tile(value, dim, axis)` actions whose *propagated* fingerprints
//! coincide: different actions frequently converge to the same state
//! after propagation, and each class only needs to be costed (and later
//! simulator-rescored) once.

use std::collections::HashMap;

use partir_core::{OpAxisCtx, Partitioning, ResultAction, ShardKind};
use partir_ir::{Fingerprint, Func, IrError, OpId, OpKind, ValueId};
use partir_mesh::{Axis, HardwareConfig};

use crate::memory::liveness_frees;

/// Maximum tensor rank the packed layouts carry (split-head attention
/// tensors are rank 5, the largest in the zoo). Kept tight: candidate
/// costing copies and compares `Layout`/`LocalShape` values in its
/// innermost loop, so struct size is throughput.
/// [`StaticObjective::cost`] errors beyond it.
const MAX_RANK: usize = 6;

/// Maximum mesh axes (each axis tiles at most one dimension of a value,
/// so this also bounds any per-dimension axis stack). Batch, model,
/// pipeline and expert parallelism fit in four; `Eval::new` errors on
/// wider meshes.
const MAX_AXES: usize = 4;

/// One dimension's axis stack, outer-to-inner, as mesh-axis ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct Stack {
    len: u8,
    ax: [u8; MAX_AXES],
}

impl Stack {
    fn push(&mut self, id: u8) {
        self.ax[self.len as usize] = id;
        self.len += 1;
    }

    fn axes(&self) -> &[u8] {
        &self.ax[..self.len as usize]
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn contains(&self, id: u8) -> bool {
        self.axes().contains(&id)
    }
}

/// Per-dimension slicing stacks of a value (outer-to-inner order), the
/// same shape `all_gather`/`all_slice` collectives carry — packed so a
/// candidate walk never touches the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Layout {
    rank: u8,
    dims: [Stack; MAX_RANK],
}

impl Layout {
    fn empty(rank: usize) -> Self {
        Layout {
            rank: rank as u8,
            dims: [Stack::default(); MAX_RANK],
        }
    }

    fn dims(&self) -> &[Stack] {
        &self.dims[..self.rank as usize]
    }

    fn any_axes(&self) -> bool {
        self.dims().iter().any(|s| !s.is_empty())
    }
}

/// A device-local shape (dimensions already divided by tiling axes).
/// Dims are `u32`: single-tensor dimensions beyond 4 billion would
/// overflow byte sizes long before they got here.
#[derive(Debug, Clone, Copy, Default)]
struct LocalShape {
    rank: u8,
    dim: [u32; MAX_RANK],
}

impl LocalShape {
    fn num_elements(&self) -> f64 {
        self.dim[..self.rank as usize]
            .iter()
            .map(|&d| d as f64)
            .product()
    }

    fn dim(&self, d: usize) -> usize {
        self.dim[d] as usize
    }
}

/// What a producer-tail `all_gather` fuses into when its sole consumer
/// starts with an `all_slice` (mirror of `spmd::fuse::decide`).
enum GatherFusion {
    /// Gather and slice cancel exactly.
    Cancel,
    /// Gather on one dim + slice on another over the same axis stack.
    AllToAll(Stack),
}

/// The single dimension of `l` carrying axes, if exactly one does.
fn single_dim(l: &Layout) -> Option<usize> {
    let mut found = None;
    for (d, s) in l.dims().iter().enumerate() {
        if !s.is_empty() {
            if found.is_some() {
                return None;
            }
            found = Some(d);
        }
    }
    found
}

/// `spmd::fuse::decide` for an `all_gather` producer, on layouts.
fn gather_slice_fusion(gather: &Layout, slice: &Layout) -> Option<GatherFusion> {
    if gather == slice {
        return Some(GatherFusion::Cancel);
    }
    let (g, s) = (single_dim(gather)?, single_dim(slice)?);
    if g != s && gather.dims[g] == slice.dims[s] {
        return Some(GatherFusion::AllToAll(gather.dims[g]));
    }
    None
}

/// Per-dimension reshard diff: the common slicing prefix stays, the
/// rest of `from` is gathered and the rest of `to` sliced (mirror of
/// `spmd::lower::reshard`).
fn reshard_diff(from: &Layout, to: &Layout) -> (Layout, Layout) {
    let rank = from.rank as usize;
    let mut gather = Layout::empty(rank);
    let mut slice = Layout::empty(rank);
    for d in 0..rank {
        let (f, t) = (&from.dims[d], &to.dims[d]);
        if f == t {
            continue;
        }
        let common = f
            .axes()
            .iter()
            .zip(t.axes())
            .take_while(|(a, b)| a == b)
            .count();
        for &a in &f.axes()[common..] {
            gather.dims[d].push(a);
        }
        for &a in &t.axes()[common..] {
            slice.dims[d].push(a);
        }
    }
    (gather, slice)
}

/// The fusion pass's `all_slice(all_reduce(x))` → `reduce_scatter`
/// decision, replayed on layouts: returns
/// `(residual_slice, covered, residual_reduce)` when the rewrite fires
/// (mirror of `spmd::fuse::decide`).
fn reduce_scatter_fusion(reduce: &Stack, slice: &Layout) -> Option<(Layout, Layout, Stack)> {
    let rank = slice.rank as usize;
    let mut covered = Layout::empty(rank);
    let mut residual_slice = Layout::empty(rank);
    let mut used = Stack::default();
    for (d, stack) in slice.dims().iter().enumerate() {
        let axes_d = stack.axes();
        let suffix_start = axes_d
            .iter()
            .rposition(|&a| !reduce.contains(a))
            .map_or(0, |p| p + 1);
        if axes_d[..suffix_start].iter().any(|&a| reduce.contains(a)) {
            return None; // a covered axis before the suffix would reorder
        }
        for &a in &axes_d[..suffix_start] {
            residual_slice.dims[d].push(a);
        }
        for &a in &axes_d[suffix_start..] {
            covered.dims[d].push(a);
            used.push(a);
        }
    }
    if used.is_empty() {
        return None;
    }
    let mut residual_reduce = Stack::default();
    for &a in reduce.axes() {
        if !used.contains(a) {
            residual_reduce.push(a);
        }
    }
    Some((residual_slice, covered, residual_reduce))
}

/// Tunables of the static objective. The efficiency constants mirror
/// `partir_sim::SimConfig`; the weights exist for calibration and for
/// mutation tests (a mis-weighted objective must lose rank agreement).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectiveConfig {
    /// Fraction of peak FLOPS achieved by contraction ops.
    pub matmul_efficiency: f64,
    /// Fraction of peak HBM bandwidth achieved by memory-bound ops.
    pub hbm_efficiency: f64,
    /// Multiplier on all communication seconds.
    pub comm_weight: f64,
    /// Multiplier on all compute seconds.
    pub compute_weight: f64,
}

impl Default for ObjectiveConfig {
    fn default() -> Self {
        ObjectiveConfig {
            matmul_efficiency: 0.55,
            hbm_efficiency: 0.7,
            comm_weight: 1.0,
            compute_weight: 1.0,
        }
    }
}

/// The static objective's estimate for one candidate partitioning.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct StaticCost {
    /// Roofline compute seconds (device-local shapes).
    pub compute_s: f64,
    /// Ring-collective communication seconds.
    pub comm_s: f64,
    /// Bytes on the wire per device per step.
    pub comm_bytes: f64,
    /// Liveness-walk peak device memory bound, bytes.
    pub peak_memory_bytes: u64,
}

impl StaticCost {
    /// Estimated step time, seconds.
    pub fn runtime_s(&self) -> f64 {
        self.compute_s + self.comm_s
    }

    /// The scalar the search minimises — same shape as
    /// `partir_sim::Evaluation::cost`: runtime with a multiplicative
    /// penalty once the memory bound exceeds device HBM.
    pub fn cost(&self, hw: &HardwareConfig) -> f64 {
        let mem = self.peak_memory_bytes as f64;
        let cap = hw.device.hbm_bytes as f64;
        let penalty = if mem > cap { 10.0 * (mem / cap) } else { 1.0 };
        self.runtime_s() * penalty
    }
}

/// Statically costs `part` on `hw` with the default configuration.
///
/// One-shot convenience over [`StaticObjective`]; searches evaluating
/// many candidates of one function should build the objective once and
/// call [`StaticObjective::cost`] per candidate.
///
/// # Errors
///
/// Fails when a context references an axis missing from the mesh or
/// topology (impossible for states produced by `tile`/`propagate`), or
/// when a tensor exceeds the packed-layout rank bound.
pub fn static_cost(
    func: &Func,
    part: &Partitioning,
    hw: &HardwareConfig,
) -> Result<StaticCost, IrError> {
    StaticObjective::new(func).cost(part, hw)
}

/// [`static_cost`] with an explicit configuration.
///
/// # Errors
///
/// Same failure modes as [`static_cost`].
pub fn static_cost_with(
    func: &Func,
    part: &Partitioning,
    hw: &HardwareConfig,
    cfg: ObjectiveConfig,
) -> Result<StaticCost, IrError> {
    StaticObjective::with_config(func, cfg).cost(part, hw)
}

/// Roofline class of an op (which peak the flop term divides by).
#[derive(Debug, Clone, Copy)]
enum OpClass {
    Contraction,
    Constant,
    Other,
}

fn op_class(kind: &OpKind) -> OpClass {
    match kind {
        OpKind::Dot(_)
        | OpKind::Convolution(_)
        | OpKind::ConvInputGrad { .. }
        | OpKind::ConvFilterGrad { .. } => OpClass::Contraction,
        OpKind::Constant(_) => OpClass::Constant,
        _ => OpClass::Other,
    }
}

/// Hardware-independent roofline terms of one op on its *global*
/// (replicated) shapes — the fast path for unsharded ops.
#[derive(Debug, Clone, Copy)]
struct ReplCost {
    flops: f64,
    bytes: f64,
    class: OpClass,
}

/// Where a value's stored form is consumed (for cross-op fusion).
#[derive(Debug, Clone, Copy, Default)]
enum UseSite {
    #[default]
    None,
    /// Operand slot `slot` of `op`; the required layout comes from the
    /// op's loop context.
    Operand { op: OpId, slot: u32 },
    /// A loop-boundary reshard (`for` init or yield); the required
    /// layout is the stored layout of region param `param`.
    Boundary { param: ValueId },
}

/// Structural use summary of one value — counts, escape flag and the
/// first use site. Candidate-independent; the layout comparison that
/// decides fusion eligibility happens per candidate.
#[derive(Debug, Clone, Copy, Default)]
struct UseInfo {
    count: u32,
    escapes: bool,
    site: UseSite,
    site_body: u32,
}

/// The reusable half of the static objective: everything that depends
/// only on the function, computed once and shared across every
/// candidate a search evaluates.
pub struct StaticObjective<'f> {
    func: &'f Func,
    cfg: ObjectiveConfig,
    /// Values transitively needed by the function results. The fusion
    /// pass eliminates dead code before the simulator runs (train steps
    /// carry dead input-gradient chains, for example), so the static
    /// walk must skip dead ops too.
    live: Vec<bool>,
    /// Memory-walk linearisation and per-position free lists.
    order: Vec<OpId>,
    frees: Vec<Vec<ValueId>>,
    /// Per-value use summaries and defining-body ids (cross-op fusion).
    uses: Vec<UseInfo>,
    def_body: Vec<u32>,
    /// Per-op roofline terms on global shapes (replicated fast path).
    repl: Vec<ReplCost>,
    /// Per-value global byte sizes, packed global shapes and element
    /// sizes (`global_bytes / num_elements`, so device-local bytes are
    /// one multiply away from a device-local shape).
    global_bytes: Vec<u64>,
    gshape: Vec<LocalShape>,
    dsize: Vec<f64>,
    rank_ok: bool,
}

impl<'f> StaticObjective<'f> {
    /// Precomputes the function-level analysis with the default config.
    pub fn new(func: &'f Func) -> Self {
        Self::with_config(func, ObjectiveConfig::default())
    }

    /// [`StaticObjective::new`] with an explicit configuration.
    pub fn with_config(func: &'f Func, cfg: ObjectiveConfig) -> Self {
        let live = liveness(func);
        let (lin, freed) = liveness_frees(func);
        let order: Vec<OpId> = lin.order().to_vec();
        let mut frees: Vec<Vec<ValueId>> = vec![Vec::new(); order.len() + 1];
        for (i, f) in freed.iter().enumerate() {
            if let Some(pos) = f {
                frees[*pos].push(ValueId(i as u32));
            }
        }
        let mut uses = vec![UseInfo::default(); func.num_values()];
        let mut def_body = vec![0u32; func.num_values()];
        let mut next_body = 0u32;
        collect_uses(
            func,
            func.body(),
            0,
            &mut next_body,
            &mut def_body,
            &mut uses,
        );
        for &r in func.results() {
            uses[r.0 as usize].escapes = true;
        }
        let rank_ok = func
            .value_ids()
            .all(|v| func.value_type(v).rank() <= MAX_RANK);
        let gshape: Vec<LocalShape> = if rank_ok {
            func.value_ids().map(|v| global_shape(func, v)).collect()
        } else {
            Vec::new()
        };
        let mut repl = vec![
            ReplCost {
                flops: 0.0,
                bytes: 0.0,
                class: OpClass::Other,
            };
            func.num_ops()
        ];
        if rank_ok {
            for op_id in func.op_ids() {
                let op = func.op(op_id);
                if matches!(op.kind, OpKind::For { .. }) {
                    continue;
                }
                let mut operands = [LocalShape::default(); 8];
                for (i, &o) in op.operands.iter().enumerate() {
                    operands[i] = gshape[o.0 as usize];
                }
                let result = gshape[op.results[0].0 as usize];
                let flops = local_op_flops(&op.kind, &operands[..op.operands.len()], &result);
                let bytes = op
                    .operands
                    .iter()
                    .map(|&o| func.value_type(o).size_bytes() as f64)
                    .sum::<f64>()
                    + func.value_type(op.results[0]).size_bytes() as f64;
                repl[op_id.0 as usize] = ReplCost {
                    flops,
                    bytes,
                    class: op_class(&op.kind),
                };
            }
        }
        let global_bytes: Vec<u64> = func
            .value_ids()
            .map(|v| func.value_type(v).size_bytes() as u64)
            .collect();
        let dsize = global_bytes
            .iter()
            .zip(&gshape)
            .map(|(&b, g)| {
                let elems = g.num_elements();
                if elems > 0.0 {
                    b as f64 / elems
                } else {
                    0.0
                }
            })
            .collect();
        StaticObjective {
            func,
            cfg,
            live,
            order,
            frees,
            uses,
            def_body,
            repl,
            global_bytes,
            gshape,
            dsize,
            rank_ok,
        }
    }

    /// Statically costs one candidate against the precomputed analysis.
    ///
    /// # Errors
    ///
    /// Same failure modes as [`static_cost`].
    pub fn cost(&self, part: &Partitioning, hw: &HardwareConfig) -> Result<StaticCost, IrError> {
        if !self.rank_ok {
            return Err(IrError::invalid(format!(
                "static objective supports tensors of rank <= {MAX_RANK}"
            )));
        }
        let mut ev = Eval::new(self, part, hw)?;
        // The cost walk also records per-op gather transients, which the
        // memory walk below folds into the peak bound.
        let (compute_s, comm_s, comm_bytes) = ev.walk_body(self.func.body(), 1.0)?;
        let peak = ev.peak_memory()?;
        Ok(StaticCost {
            compute_s: compute_s * self.cfg.compute_weight,
            comm_s: comm_s * self.cfg.comm_weight,
            comm_bytes,
            peak_memory_bytes: peak,
        })
    }
}

fn global_shape(func: &Func, v: ValueId) -> LocalShape {
    let dims = func.value_type(v).shape.dims();
    let mut ls = LocalShape {
        rank: dims.len() as u8,
        dim: [0; MAX_RANK],
    };
    for (d, &v) in dims.iter().enumerate() {
        ls.dim[d] = v as u32;
    }
    ls
}

/// Structural mirror of the fusion pass's use analysis: counts every
/// consumption of a value's stored form (op operands, `for` init and
/// yield boundary reshards), remembering the first site. Body ids are
/// assigned pre-order so producer/consumer same-body checks match the
/// lowered program's trip-count multipliers.
fn collect_uses(
    func: &Func,
    body: &[OpId],
    body_id: u32,
    next_body: &mut u32,
    def_body: &mut [u32],
    uses: &mut [UseInfo],
) {
    let note = |uses: &mut [UseInfo], v: ValueId, site: UseSite, b: u32| {
        let rec = &mut uses[v.0 as usize];
        rec.count += 1;
        if rec.count == 1 {
            rec.site = site;
            rec.site_body = b;
        }
    };
    for &op_id in body {
        let op = func.op(op_id);
        if let (OpKind::For { .. }, Some(region)) = (&op.kind, &op.region) {
            // Init boundary reshards consume the inits in this body.
            for (i, &init) in op.operands.iter().enumerate() {
                let site = UseSite::Boundary {
                    param: region.params[i + 1],
                };
                note(uses, init, site, body_id);
            }
            *next_body += 1;
            let inner = *next_body;
            for &p in &region.params {
                def_body[p.0 as usize] = inner;
            }
            collect_uses(func, &region.body, inner, next_body, def_body, uses);
            // Yield boundary reshards consume the yields inside the
            // region. (A trivial yield reshard is rejected per candidate:
            // its layout diff is empty, never a pure slice.)
            for (i, &y) in region.results.iter().enumerate() {
                let site = UseSite::Boundary {
                    param: region.params[i + 1],
                };
                note(uses, y, site, inner);
            }
            for &r in &op.results {
                def_body[r.0 as usize] = body_id;
            }
            continue;
        }
        for (i, &operand) in op.operands.iter().enumerate() {
            let site = UseSite::Operand {
                op: op_id,
                slot: i as u32,
            };
            note(uses, operand, site, body_id);
        }
        for &r in &op.results {
            def_body[r.0 as usize] = body_id;
        }
    }
}

/// Accumulated `(compute_s, comm_s, comm_bytes)`.
type Costs = (f64, f64, f64);

const ZERO: Costs = (0.0, 0.0, 0.0);

fn add(c: Costs, total: &mut Costs) {
    total.0 += c.0;
    total.1 += c.1;
    total.2 += c.2;
}

/// One candidate evaluation: mesh axes resolved to ids, link terms and
/// roofline denominators looked up once.
struct Eval<'a, 'f> {
    obj: &'a StaticObjective<'f>,
    part: &'a Partitioning,
    axes: Vec<Axis>,
    size: Vec<f64>,
    int_size: Vec<u64>,
    bw: Vec<f64>,
    lat: Vec<f64>,
    contraction_flops: f64,
    peak_flops: f64,
    hbm: f64,
    /// Largest gather temporary per op, filled during the cost walk and
    /// consumed by the memory walk.
    transient: Vec<u64>,
}

impl<'a, 'f> Eval<'a, 'f> {
    fn new(
        obj: &'a StaticObjective<'f>,
        part: &'a Partitioning,
        hw: &'a HardwareConfig,
    ) -> Result<Self, IrError> {
        let mesh_axes = part.mesh().axes();
        if mesh_axes.len() > MAX_AXES {
            return Err(IrError::invalid(format!(
                "static objective supports meshes of <= {MAX_AXES} axes"
            )));
        }
        let err = |e: partir_mesh::MeshError| IrError::invalid(e.to_string());
        let mut axes = Vec::with_capacity(mesh_axes.len());
        let mut size = Vec::with_capacity(mesh_axes.len());
        let mut int_size = Vec::with_capacity(mesh_axes.len());
        let mut bw = Vec::with_capacity(mesh_axes.len());
        let mut lat = Vec::with_capacity(mesh_axes.len());
        for (a, s) in mesh_axes {
            axes.push(a.clone());
            size.push(*s as f64);
            int_size.push(*s as u64);
            bw.push(hw.topology.bandwidth(a).map_err(err)?);
            lat.push(hw.topology.latency(a).map_err(err)?);
        }
        let cfg = obj.cfg;
        Ok(Eval {
            obj,
            part,
            axes,
            size,
            int_size,
            bw,
            lat,
            contraction_flops: hw.device.peak_flops_f32 * cfg.matmul_efficiency,
            peak_flops: hw.device.peak_flops_f32,
            hbm: hw.device.hbm_bandwidth * cfg.hbm_efficiency,
            transient: vec![0u64; obj.func.num_ops()],
        })
    }

    fn axis_id(&self, axis: &Axis) -> Result<u8, IrError> {
        for (i, a) in self.axes.iter().enumerate() {
            // Context axes are clones of the mesh's `Arc<str>` names, so
            // the fat-pointer comparison almost always short-circuits the
            // string compare.
            if std::ptr::eq(a.name(), axis.name()) || a == axis {
                return Ok(i as u8);
            }
        }
        Err(IrError::invalid(format!("axis {axis} missing from mesh")))
    }

    fn link(&self, id: u8) -> (f64, f64, f64) {
        let i = id as usize;
        (self.size[i], self.bw[i], self.lat[i])
    }

    fn stored_layout(&self, v: ValueId) -> Result<Layout, IrError> {
        let mut l = Layout::empty(self.obj.func.value_type(v).rank());
        for (axis, kind) in self.part.value_ctx(v).entries() {
            if let ShardKind::Tile { dim } = kind {
                l.dims[*dim].push(self.axis_id(axis)?);
            }
        }
        Ok(l)
    }

    /// [`Eval::stored_layout`] plus the device-local byte size under that
    /// layout, from one pass over the value context.
    fn stored_layout_bytes(&self, v: ValueId) -> Result<(Layout, f64), IrError> {
        let vi = v.0 as usize;
        let bytes = self.obj.global_bytes[vi] as f64;
        let mut l = Layout::empty(self.obj.gshape[vi].rank as usize);
        let ctx = self.part.value_ctx(v);
        if ctx.is_empty() {
            return Ok((l, bytes));
        }
        let mut divisor = 1.0;
        for (axis, kind) in ctx.entries() {
            if let ShardKind::Tile { dim } = kind {
                let id = self.axis_id(axis)?;
                l.dims[*dim].push(id);
                divisor *= self.size[id as usize];
            }
        }
        Ok((l, bytes / divisor))
    }

    /// The layout the op's loop context requires for operand slot `i`
    /// (mirror of `spmd::lower::required_operand_layout`).
    fn required_operand_layout(
        &self,
        op_id: OpId,
        i: usize,
        rank: usize,
    ) -> Result<Layout, IrError> {
        let mut l = Layout::empty(rank);
        for (axis, axis_ctx) in self.part.op_ctx(op_id).entries() {
            let OpAxisCtx::Entry(e) = axis_ctx;
            if let Some(Some(d)) = e.operands.get(i) {
                l.dims[*d].push(self.axis_id(axis)?);
            }
        }
        Ok(l)
    }

    /// Device-local byte size of `v` under `layout`.
    fn local_bytes(&self, v: ValueId, layout: &Layout) -> f64 {
        let mut bytes = self.obj.global_bytes[v.0 as usize] as f64;
        for s in layout.dims() {
            for &id in s.axes() {
                bytes /= self.size[id as usize];
            }
        }
        bytes
    }

    /// Device-local shape and byte size of `v` under `layout`. Tiled
    /// dims divide exactly (legality), so `elements * element_size`
    /// equals dividing the global byte count.
    fn local_shape_bytes(&self, v: ValueId, layout: &Layout) -> (LocalShape, f64) {
        let vi = v.0 as usize;
        let mut ls = self.obj.gshape[vi];
        let mut divided = false;
        for (d, s) in layout.dims().iter().enumerate() {
            for &id in s.axes() {
                ls.dim[d] /= self.int_size[id as usize] as u32;
                divided = true;
            }
        }
        let bytes = if divided {
            ls.num_elements() * self.obj.dsize[vi]
        } else {
            self.obj.global_bytes[vi] as f64
        };
        (ls, bytes)
    }

    /// Ring `all_reduce` over `axes` of a `bytes`-sized local value.
    fn all_reduce(&self, bytes: f64, axes: &Stack) -> Costs {
        let mut time = 0.0;
        let mut wire = 0.0;
        for &id in axes.axes() {
            let (k, bw, lat) = self.link(id);
            let moved = 2.0 * (k - 1.0) / k * bytes;
            time += moved / bw + 2.0 * (k - 1.0) * lat;
            wire += moved;
        }
        (0.0, time, wire)
    }

    /// Staged ring `all_gather`: sizes grow axis by axis, dims in
    /// ascending order, axes within a dim innermost-first (the exact
    /// iteration order of `partir_sim::collective_time`).
    fn all_gather(&self, start_bytes: f64, gather: &Layout) -> Costs {
        let mut bytes = start_bytes;
        let mut time = 0.0;
        let mut wire = 0.0;
        for stack in gather.dims() {
            for &id in stack.axes().iter().rev() {
                let (k, bw, lat) = self.link(id);
                let out = bytes * k;
                let moved = (k - 1.0) / k * out;
                time += moved / bw + (k - 1.0) * lat;
                wire += moved;
                bytes = out;
            }
        }
        (0.0, time, wire)
    }

    /// Staged ring `reduce_scatter`: sizes shrink axis by axis.
    fn reduce_scatter(&self, start_bytes: f64, covered: &Layout) -> Costs {
        let mut bytes = start_bytes;
        let mut time = 0.0;
        let mut wire = 0.0;
        for stack in covered.dims() {
            for &id in stack.axes() {
                let (k, bw, lat) = self.link(id);
                let moved = (k - 1.0) / k * bytes;
                time += moved / bw + (k - 1.0) * lat;
                wire += moved;
                bytes /= k;
            }
        }
        (0.0, time, wire)
    }

    /// Ring `all_to_all` over one axis stack.
    fn all_to_all(&self, bytes: f64, axes: &Stack) -> Costs {
        let mut time = 0.0;
        let mut wire = 0.0;
        for &id in axes.axes() {
            let (k, bw, lat) = self.link(id);
            let moved = (k - 1.0) / k * bytes;
            time += moved / bw + (k - 1.0) * lat;
            wire += moved;
        }
        (0.0, time, wire)
    }

    /// Cost of resharding a value of `bytes_from` local bytes from layout
    /// `from` to `to`. Slices are device-local and free.
    fn reshard_cost(&self, bytes_from: f64, from: &Layout, to: &Layout) -> Costs {
        if from == to {
            return ZERO;
        }
        let (gather, slice) = reshard_diff(from, to);
        self.resolved_reshard(bytes_from, &gather, &slice)
    }

    /// [`Eval::reshard_cost`] on an already-computed diff, with the
    /// fusion pass's gather+slice → `all_to_all` rewrite applied.
    fn resolved_reshard(&self, bytes_from: f64, gather: &Layout, slice: &Layout) -> Costs {
        if !gather.any_axes() {
            return ZERO; // pure slice: free
        }
        match gather_slice_fusion(gather, slice) {
            Some(GatherFusion::Cancel) => ZERO,
            Some(GatherFusion::AllToAll(axes)) => self.all_to_all(bytes_from, &axes),
            None => self.all_gather(bytes_from, gather),
        }
    }

    /// Roofline compute time on device-local shapes (mirror of
    /// `partir_sim`'s `op_time`).
    fn op_time(
        &self,
        kind: &OpKind,
        operands: &[LocalShape],
        result: &LocalShape,
        moved_bytes: f64,
    ) -> f64 {
        let flops = local_op_flops(kind, operands, result);
        let mem_time = moved_bytes / self.hbm;
        match op_class(kind) {
            OpClass::Contraction => (flops / self.contraction_flops).max(mem_time),
            OpClass::Constant => 0.0,
            OpClass::Other => mem_time.max(flops / self.peak_flops),
        }
    }

    /// Roofline time of a fully replicated op from precomputed terms.
    fn repl_time(&self, op_id: OpId) -> f64 {
        let r = self.obj.repl[op_id.0 as usize];
        match r.class {
            OpClass::Contraction => (r.flops / self.contraction_flops).max(r.bytes / self.hbm),
            OpClass::Constant => 0.0,
            OpClass::Other => (r.bytes / self.hbm).max(r.flops / self.peak_flops),
        }
    }

    /// Whether nothing around this op is sharded: no loop context, all
    /// operands and results stored replicated. Such ops cost exactly
    /// their precomputed global roofline time and no communication.
    fn replicated(&self, op_id: OpId, operands: &[ValueId], results: &[ValueId]) -> bool {
        self.part.op_ctx(op_id).entries().is_empty()
            && results.iter().all(|&r| self.part.value_ctx(r).is_empty())
            && operands.iter().all(|&o| self.part.value_ctx(o).is_empty())
    }

    fn walk_body(&mut self, body: &[OpId], trips: f64) -> Result<Costs, IrError> {
        let mut total = ZERO;
        let scale = |c: Costs, total: &mut Costs| {
            total.0 += trips * c.0;
            total.1 += trips * c.1;
            total.2 += trips * c.2;
        };
        for &op_id in body {
            let op = self.obj.func.op(op_id);
            if !op.results.iter().any(|r| self.obj.live[r.0 as usize]) {
                continue; // dead code: eliminated before the simulator runs
            }
            if let (OpKind::For { trip_count }, Some(region)) = (&op.kind, &op.region) {
                scale(self.for_cost(op_id, *trip_count, region)?, &mut total);
                continue;
            }
            if self.replicated(op_id, &op.operands, &op.results) {
                total.0 += trips * self.repl_time(op_id);
                continue;
            }
            scale(self.op_cost(op_id)?, &mut total);
        }
        Ok(total)
    }

    /// The sole consumer's pure-slice layout for `v`'s stored form, when
    /// cross-op collective fusion applies (see the module docs). Only
    /// consulted for ops whose chain ends in a bare gather/reduce.
    fn cross_slice(&self, v: ValueId) -> Result<Option<Layout>, IrError> {
        let u = self.obj.uses[v.0 as usize];
        if u.escapes || u.count != 1 || self.obj.def_body[v.0 as usize] != u.site_body {
            return Ok(None);
        }
        let required = match u.site {
            UseSite::None => return Ok(None),
            UseSite::Operand { op, slot } => {
                let rank = self.obj.func.value_type(v).rank();
                self.required_operand_layout(op, slot as usize, rank)?
            }
            UseSite::Boundary { param } => self.stored_layout(param)?,
        };
        let stored = self.stored_layout(v)?;
        let (gather, slice) = reshard_diff(&stored, &required);
        Ok((!gather.any_axes() && slice.any_axes()).then_some(slice))
    }

    /// Cost of one non-region op: operand reshards, localized compute,
    /// reduction (with analytical reduce_scatter fusion), result reshard.
    /// Also records the op's gather transient for the memory walk.
    fn op_cost(&mut self, op_id: OpId) -> Result<Costs, IrError> {
        let func = self.obj.func;
        let op = func.op(op_id);
        let result = op.results[0];
        let mut cost = ZERO;

        // Nullary ops materialise the full value and slice (free) down.
        if op.operands.is_empty() {
            cost.0 += self.repl_time(op_id);
            return Ok(cost);
        }

        // Required per-slot layouts, the produced result layout and the
        // reduced axes, all from one pass over the op context (mirror of
        // `spmd::lower`'s required/produced layouts).
        let n = op.operands.len();
        let mut req = [Layout::empty(0); 8];
        for (i, &o) in op.operands.iter().enumerate() {
            req[i].rank = self.obj.gshape[o.0 as usize].rank;
        }
        let mut produced = Layout::empty(self.obj.gshape[result.0 as usize].rank as usize);
        let mut reduce_axes = Stack::default();
        for (axis, axis_ctx) in self.part.op_ctx(op_id).entries() {
            let OpAxisCtx::Entry(e) = axis_ctx;
            let id = self.axis_id(axis)?;
            for (i, slot) in e.operands.iter().enumerate() {
                if let Some(d) = slot {
                    req[i].dims[*d].push(id);
                }
            }
            match e.result {
                ResultAction::Tile(d) => produced.dims[d].push(id),
                ResultAction::Reduce(_) => reduce_axes.push(id),
            }
        }

        // 1. Operand reshards (stored layout → required layout).
        let mut shapes = [LocalShape::default(); 8];
        let mut moved = 0.0;
        let mut transient = 0.0f64;
        for (i, &operand) in op.operands.iter().enumerate() {
            let to = &req[i];
            let (from, bytes_from) = self.stored_layout_bytes(operand)?;
            if from != *to {
                let (g, s) = reshard_diff(&from, to);
                add(self.resolved_reshard(bytes_from, &g, &s), &mut cost);
                transient = transient.max(self.gather_growth(bytes_from, &g));
            }
            let (shape, bytes_to) = self.local_shape_bytes(operand, to);
            shapes[i] = shape;
            moved += bytes_to;
        }

        // 2. Localized compute.
        let (local_result, produced_bytes) = self.local_shape_bytes(result, &produced);
        moved += produced_bytes;
        cost.0 += self.op_time(&op.kind, &shapes[..n], &local_result, moved);

        // 3. Reduce + reshard to the stored layout, with the fusion
        // pass's rewrites applied analytically. When the chain ends in a
        // bare gather/reduce, the sole consumer's pure-slice reshard (if
        // any) plays the role of the chain's own slice.
        let stored = self.stored_layout(result)?;
        let (gather, slice) = reshard_diff(&produced, &stored);
        transient = transient.max(self.gather_growth(produced_bytes, &gather));
        self.transient[op_id.0 as usize] = transient as u64;
        let gathers = gather.any_axes();
        let slices = slice.any_axes();

        if reduce_axes.is_empty() {
            if !gathers {
                return Ok(cost); // identity or pure slice: free
            }
            if !slices {
                if let Some(s2) = self.cross_slice(result)? {
                    match gather_slice_fusion(&gather, &s2) {
                        Some(GatherFusion::Cancel) => return Ok(cost),
                        Some(GatherFusion::AllToAll(axes)) => {
                            add(self.all_to_all(produced_bytes, &axes), &mut cost);
                            return Ok(cost);
                        }
                        None => {}
                    }
                }
            }
            add(
                self.resolved_reshard(produced_bytes, &gather, &slice),
                &mut cost,
            );
            return Ok(cost);
        }
        if !gathers {
            let absorbing = if slices {
                Some(slice)
            } else {
                self.cross_slice(result)?
            };
            if let Some(s) = absorbing {
                if let Some((residual_slice, covered, residual_reduce)) =
                    reduce_scatter_fusion(&reduce_axes, &s)
                {
                    // Fused emission order: residual slice (free),
                    // residual all_reduce, reduce_scatter — all on the
                    // sliced bytes.
                    let mut bytes = produced_bytes;
                    for stack in residual_slice.dims() {
                        for &id in stack.axes() {
                            bytes /= self.size[id as usize];
                        }
                    }
                    add(self.all_reduce(bytes, &residual_reduce), &mut cost);
                    add(self.reduce_scatter(bytes, &covered), &mut cost);
                    return Ok(cost);
                }
            }
            add(self.all_reduce(produced_bytes, &reduce_axes), &mut cost);
            return Ok(cost);
        }
        // Reduce then gather: the all_reduce always runs; the trailing
        // gather may still fuse with the sole consumer's slice.
        add(self.all_reduce(produced_bytes, &reduce_axes), &mut cost);
        if !slices {
            if let Some(s2) = self.cross_slice(result)? {
                match gather_slice_fusion(&gather, &s2) {
                    Some(GatherFusion::Cancel) => return Ok(cost),
                    Some(GatherFusion::AllToAll(axes)) => {
                        add(self.all_to_all(produced_bytes, &axes), &mut cost);
                        return Ok(cost);
                    }
                    None => {}
                }
            }
        }
        add(
            self.resolved_reshard(produced_bytes, &gather, &slice),
            &mut cost,
        );
        Ok(cost)
    }

    /// Bytes a staged gather materialises beyond the source footprint.
    fn gather_growth(&self, bytes_from: f64, gather: &Layout) -> f64 {
        let mut factor = 1.0;
        for stack in gather.dims() {
            for &id in stack.axes() {
                factor *= self.size[id as usize];
            }
        }
        if factor > 1.0 {
            bytes_from * factor - bytes_from
        } else {
            0.0
        }
    }

    /// Cost of a `for` op: boundary reshards once, body × trip count
    /// (yield reshards live inside the region, mirroring the lowering).
    fn for_cost(
        &mut self,
        op_id: OpId,
        trip_count: usize,
        region: &partir_ir::Region,
    ) -> Result<Costs, IrError> {
        let op = self.obj.func.op(op_id);
        let mut cost = ZERO;
        // Inits → region-param layouts (once).
        for (i, &init) in op.operands.iter().enumerate() {
            let (from, bytes) = self.stored_layout_bytes(init)?;
            let to = self.stored_layout(region.params[i + 1])?;
            add(self.reshard_cost(bytes, &from, &to), &mut cost);
        }
        // Body × trips.
        add(self.walk_body(&region.body, trip_count as f64)?, &mut cost);
        // Yields → param layouts (inside the region: × trips).
        for (i, &ry) in region.results.iter().enumerate() {
            let (from, bytes) = self.stored_layout_bytes(ry)?;
            let to = self.stored_layout(region.params[i + 1])?;
            let (c, m, by) = self.reshard_cost(bytes, &from, &to);
            let t = trip_count as f64;
            add((c * t, m * t, by * t), &mut cost);
        }
        // Results: param layout → stored ctx (once).
        for (i, &orig) in op.results.iter().enumerate() {
            let from = self.stored_layout(region.params[i + 1])?;
            let to = self.stored_layout(orig)?;
            add(
                self.reshard_cost(self.local_bytes(orig, &from), &from, &to),
                &mut cost,
            );
        }
        Ok(cost)
    }

    /// Device-local stored byte size of `v` (integer, for the memory
    /// walk). Divisibility is enforced by the tiling actions, so one
    /// total division equals the simulator's per-dimension division.
    fn local_bytes_u64(&self, v: ValueId) -> Result<u64, IrError> {
        let ctx = self.part.value_ctx(v);
        let bytes = self.obj.global_bytes[v.0 as usize];
        if ctx.is_empty() {
            return Ok(bytes);
        }
        let mut divisor = 1u64;
        for (axis, kind) in ctx.entries() {
            if matches!(kind, ShardKind::Tile { .. }) {
                divisor *= self.int_size[self.axis_id(axis)? as usize];
            }
        }
        Ok(bytes / divisor)
    }

    /// Peak-memory bound: the precomputed liveness walk charging
    /// device-local (stored-layout) sizes, plus the largest gather
    /// temporary alive at each op.
    fn peak_memory(&self) -> Result<u64, IrError> {
        let func = self.obj.func;
        // One pass over the value table; the walk below touches each
        // value up to twice (allocate + free), so it reads the sizes
        // from here instead of re-deriving them from the contexts.
        let mut local = vec![0u64; func.num_values()];
        for v in func.value_ids() {
            local[v.0 as usize] = self.local_bytes_u64(v)?;
        }
        let mut current = 0u64;
        let mut alive = vec![false; func.num_values()];
        for &p in func.params() {
            alive[p.0 as usize] = true;
            current += local[p.0 as usize];
        }
        let mut peak = current;
        for (pos, &op_id) in self.obj.order.iter().enumerate() {
            let op = func.op(op_id);
            if !op.results.iter().any(|r| self.obj.live[r.0 as usize]) {
                continue; // dead code never materialises
            }
            for &r in &op.results {
                if !alive[r.0 as usize] {
                    alive[r.0 as usize] = true;
                    current += local[r.0 as usize];
                }
            }
            if matches!(op.kind, OpKind::For { .. }) {
                if let Some(region) = &op.region {
                    for &p in &region.params {
                        if !alive[p.0 as usize] {
                            alive[p.0 as usize] = true;
                            current += local[p.0 as usize];
                        }
                    }
                }
            }
            peak = peak.max(current + self.transient[op_id.0 as usize]);
            for &v in &self.obj.frees[pos] {
                if alive[v.0 as usize] {
                    alive[v.0 as usize] = false;
                    current = current.saturating_sub(local[v.0 as usize]);
                }
            }
        }
        Ok(peak)
    }
}

/// Values transitively needed by the function results — the same
/// fixpoint the fusion pass's dead-code elimination runs (everything
/// inside a live `for` is kept live through its region params/results).
fn liveness(func: &Func) -> Vec<bool> {
    let mut live = vec![false; func.num_values()];
    for &r in func.results() {
        live[r.0 as usize] = true;
    }
    let mut changed = true;
    while changed {
        changed = false;
        for op_id in func.op_ids().collect::<Vec<_>>().into_iter().rev() {
            let op = func.op(op_id);
            if !op.results.iter().any(|r| live[r.0 as usize]) {
                continue;
            }
            let mut mark = |v: ValueId, changed: &mut bool| {
                if !live[v.0 as usize] {
                    live[v.0 as usize] = true;
                    *changed = true;
                }
            };
            for &o in &op.operands {
                mark(o, &mut changed);
            }
            if let Some(region) = &op.region {
                for &y in &region.results {
                    mark(y, &mut changed);
                }
                for &p in &region.params {
                    mark(p, &mut changed);
                }
            }
        }
    }
    live
}

/// FLOP count of one op on (local) shapes — the same formulas as
/// `partir_sim::op_flops`, reimplemented here because `partir-sim`
/// depends on this crate. The rank-agreement tests pin the two copies
/// together.
fn local_op_flops(kind: &OpKind, operands: &[LocalShape], result: &LocalShape) -> f64 {
    match kind {
        OpKind::Dot(dims) => {
            let contract: f64 = dims
                .lhs_contract
                .iter()
                .map(|&d| operands[0].dim(d) as f64)
                .product();
            2.0 * result.num_elements() * contract
        }
        OpKind::Convolution(_) => {
            let k = &operands[1];
            2.0 * result.num_elements() * (k.dim(1) * k.dim(2) * k.dim(3)) as f64
        }
        OpKind::ConvInputGrad { .. } => {
            let k = &operands[1];
            2.0 * operands[0].num_elements() * (k.dim(1) * k.dim(2) * k.dim(3)) as f64
        }
        OpKind::ConvFilterGrad { .. } => {
            let g = &operands[1];
            2.0 * result.num_elements() * (g.dim(0) * g.dim(2) * g.dim(3)) as f64
        }
        OpKind::Reduce { .. } | OpKind::ArgMax { .. } => operands[0].num_elements(),
        OpKind::Unary(_)
        | OpKind::Binary(_)
        | OpKind::Compare(_)
        | OpKind::Select
        | OpKind::Convert(_) => result.num_elements(),
        OpKind::ScatterAdd { .. } => operands[0].num_elements(),
        _ => 0.0,
    }
}

/// One candidate `tile(value, dim, axis)` search action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TileCandidate {
    /// The value to tile.
    pub value: ValueId,
    /// The tensor dimension.
    pub dim: usize,
    /// The mesh axis.
    pub axis: Axis,
}

/// A group of candidate actions whose propagated states coincide.
#[derive(Debug)]
pub struct ActionClass {
    /// Indices into the candidate slice; the first is the representative.
    pub members: Vec<usize>,
    /// Fingerprint of the shared propagated state.
    pub fingerprint: Fingerprint,
    /// The propagated state itself (costed once per class).
    pub state: Partitioning,
}

/// Groups `candidates` by the fingerprint of the state they reach after
/// `tile` + `propagate` from `part`. Candidates whose `tile` fails are
/// dropped. Classes come out in first-seen order, so the caller's
/// largest-tensor-first candidate ordering is preserved.
pub fn equivalence_classes(
    func: &Func,
    part: &Partitioning,
    candidates: &[TileCandidate],
) -> Vec<ActionClass> {
    let mut classes: Vec<ActionClass> = Vec::new();
    let mut index: HashMap<Fingerprint, usize> = HashMap::new();
    for (i, c) in candidates.iter().enumerate() {
        let mut state = part.clone();
        if state.tile(func, c.value, c.dim, &c.axis).is_err() {
            continue;
        }
        state.propagate(func);
        let fp = state.fingerprint();
        match index.get(&fp) {
            Some(&ci) => classes[ci].members.push(i),
            None => {
                index.insert(fp, classes.len());
                classes.push(ActionClass {
                    members: vec![i],
                    fingerprint: fp,
                    state,
                });
            }
        }
    }
    classes
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::{FuncBuilder, TensorType};
    use partir_mesh::Mesh;

    fn matmul_chain() -> Func {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([256, 64]));
        let w1 = b.param("w1", TensorType::f32([64, 128]));
        let w2 = b.param("w2", TensorType::f32([128, 64]));
        let h = b.matmul(x, w1).unwrap();
        let y = b.matmul(h, w2).unwrap();
        b.build([y]).unwrap()
    }

    fn hw(mesh: &Mesh) -> HardwareConfig {
        HardwareConfig::tpu_v3_pod(mesh.clone())
    }

    /// On a replicated state the static objective must agree exactly with
    /// the simulator: no collectives, identical roofline walk.
    #[test]
    fn replicated_state_matches_simulator_exactly() {
        let f = matmul_chain();
        let mesh = Mesh::single("B", 4).unwrap();
        let hw = hw(&mesh);
        let p = Partitioning::new(&f, mesh).unwrap();
        let stat = static_cost(&f, &p, &hw).unwrap();
        let eval = partir_sim::evaluate(&f, &p, &hw).unwrap();
        assert!((stat.compute_s - eval.sim.compute_s).abs() < 1e-12 * eval.sim.compute_s.max(1.0));
        assert_eq!(stat.comm_bytes, eval.sim.comm_bytes);
        assert_eq!(stat.comm_s, eval.sim.comm_s);
    }

    /// Batch-parallel matmul chain: still collective-free, and the static
    /// compute estimate tracks the simulator's on the local shapes.
    #[test]
    fn batch_parallel_matches_simulator() {
        let f = matmul_chain();
        let mesh = Mesh::single("B", 4).unwrap();
        let hw = hw(&mesh);
        let mut p = Partitioning::new(&f, mesh).unwrap();
        p.tile(&f, f.params()[0], 0, &"B".into()).unwrap();
        p.propagate(&f);
        let stat = static_cost(&f, &p, &hw).unwrap();
        let eval = partir_sim::evaluate(&f, &p, &hw).unwrap();
        assert_eq!(stat.comm_bytes, eval.sim.comm_bytes);
        let rel = (stat.compute_s - eval.sim.compute_s).abs() / eval.sim.compute_s;
        assert!(rel < 1e-9, "compute drifted: {rel}");
    }

    /// Megatron sharding introduces an all_reduce; the static comm bytes
    /// must match the fused program's exactly.
    #[test]
    fn megatron_all_reduce_bytes_match() {
        let f = matmul_chain();
        let mesh = Mesh::new([("B", 4), ("M", 2)]).unwrap();
        let hw = hw(&mesh);
        let mut p = Partitioning::new(&f, mesh).unwrap();
        p.tile(&f, f.params()[0], 0, &"B".into()).unwrap();
        p.tile(&f, f.params()[1], 1, &"M".into()).unwrap();
        p.propagate(&f);
        let stat = static_cost(&f, &p, &hw).unwrap();
        let eval = partir_sim::evaluate(&f, &p, &hw).unwrap();
        assert!(stat.comm_bytes > 0.0);
        assert_eq!(stat.comm_bytes, eval.sim.comm_bytes);
        assert!((stat.comm_s - eval.sim.comm_s).abs() < 1e-15);
    }

    /// The memory bound shrinks as parameters are sharded, and the bound
    /// stays within the same order as the simulator's peak.
    #[test]
    fn memory_bound_tracks_sharding() {
        let f = matmul_chain();
        let mesh = Mesh::single("B", 4).unwrap();
        let hw = hw(&mesh);
        let repl = Partitioning::new(&f, mesh.clone()).unwrap();
        let mut bp = repl.clone();
        bp.tile(&f, f.params()[0], 0, &"B".into()).unwrap();
        bp.propagate(&f);
        let m_repl = static_cost(&f, &repl, &hw).unwrap().peak_memory_bytes;
        let m_bp = static_cost(&f, &bp, &hw).unwrap().peak_memory_bytes;
        assert!(m_bp < m_repl);
    }

    /// The amortised evaluator must agree bit-for-bit with the one-shot
    /// entry point across candidates (it is the same walk, reused).
    #[test]
    fn reusable_objective_matches_one_shot() {
        let f = matmul_chain();
        let mesh = Mesh::new([("B", 4), ("M", 2)]).unwrap();
        let hw = hw(&mesh);
        let obj = StaticObjective::new(&f);
        let mut states = vec![Partitioning::new(&f, mesh).unwrap()];
        let mut bp = states[0].clone();
        bp.tile(&f, f.params()[0], 0, &"B".into()).unwrap();
        bp.propagate(&f);
        states.push(bp);
        let mut mp = states[0].clone();
        mp.tile(&f, f.params()[1], 1, &"M".into()).unwrap();
        mp.propagate(&f);
        states.push(mp);
        for s in &states {
            let reused = obj.cost(s, &hw).unwrap();
            let oneshot = static_cost(&f, s, &hw).unwrap();
            assert_eq!(reused, oneshot);
        }
    }

    /// Equivalence classes: tiling x rows and tiling w1 rows both
    /// propagate through the chain; actions reaching the same fingerprint
    /// share a class and distinct states get distinct classes.
    #[test]
    fn equivalence_classes_group_by_fingerprint() {
        let f = matmul_chain();
        let mesh = Mesh::single("B", 4).unwrap();
        let p = Partitioning::new(&f, mesh).unwrap();
        let params = f.params();
        let cands = vec![
            TileCandidate {
                value: params[0],
                dim: 0,
                axis: "B".into(),
            },
            TileCandidate {
                value: params[0],
                dim: 1,
                axis: "B".into(),
            },
            TileCandidate {
                value: params[1],
                dim: 0,
                axis: "B".into(),
            },
        ];
        let classes = equivalence_classes(&f, &p, &cands);
        assert!(!classes.is_empty());
        let total: usize = classes.iter().map(|c| c.members.len()).sum();
        assert_eq!(total, 3, "every viable candidate lands in a class");
        // x#0 and w1#0 propagate to different states; x#1 and w1#0 both
        // shard the contraction — whatever the grouping, fingerprints are
        // unique across classes.
        let mut fps: Vec<_> = classes.iter().map(|c| c.fingerprint).collect();
        fps.dedup();
        assert_eq!(fps.len(), classes.len());
    }

    /// The explicit failure mode the mutation test relies on: zeroing the
    /// communication weight makes a comm-heavy state look free.
    #[test]
    fn comm_weight_scales_comm_seconds() {
        let f = matmul_chain();
        let mesh = Mesh::new([("B", 4), ("M", 2)]).unwrap();
        let hw = hw(&mesh);
        let mut p = Partitioning::new(&f, mesh).unwrap();
        p.tile(&f, f.params()[1], 1, &"M".into()).unwrap();
        p.propagate(&f);
        let honest = static_cost(&f, &p, &hw).unwrap();
        let zeroed = static_cost_with(
            &f,
            &p,
            &hw,
            ObjectiveConfig {
                comm_weight: 0.0,
                ..ObjectiveConfig::default()
            },
        )
        .unwrap();
        assert!(honest.comm_s > 0.0);
        assert_eq!(zeroed.comm_s, 0.0);
    }
}
