//! Differential serving conformance: every request decoded through the
//! continuously-batched engine is bit-identical to the same request run
//! *alone* through the original fixed-batch IT32 serving loop
//! (interpreted, unpartitioned), swept over the 1×2/2×2/4×2 mesh ladder,
//! every Table 2 IT32 schedule, and {blocking, overlapped} plans.
//!
//! Tokens are i32 argmax outputs, compared with `assert_eq!` — the same
//! exact-integer-output convention as the spmd conformance suite.

use std::collections::HashMap;

use partir_ir::interp::interpret;
use partir_ir::{Literal, Shape};
use partir_mesh::{HardwareConfig, Mesh};
use partir_models::itransformer::{build_serving, ServingConfig};
use partir_models::schedules::{self, BATCH, MODEL};
use partir_models::train::synthetic_inputs;
use partir_serve::{poisson, validate_events, RunOptions, ServingEngine, Workload, WorkloadSpec};
use partir_spmd::PlanOptions;

const SEED: u64 = 2024;

/// Decodes one request alone through the oracle serving loop.
fn oracle_tokens(cfg: &ServingConfig, prompt: &[i32], steps: usize) -> Vec<i32> {
    let ocfg = cfg.oracle_config(prompt.len(), steps);
    let oracle = build_serving(&ocfg).expect("oracle builds");
    let mut inputs = synthetic_inputs(&oracle, SEED);
    let total = ocfg.buffer_len();
    let mut buf = vec![0i32; total];
    buf[..prompt.len()].copy_from_slice(prompt);
    inputs[oracle.num_param_tensors] =
        Literal::from_i32(buf, Shape::from([1, total])).expect("token buffer");
    let out = interpret(&oracle.func, &inputs).expect("oracle runs");
    let buf = out[0].as_i32().expect("i32 buffer");
    buf[prompt.len()..prompt.len() + steps].to_vec()
}

/// Solo-oracle expectation per request id (memoised per shape).
fn expectations(cfg: &ServingConfig, workload: &Workload) -> HashMap<u64, Vec<i32>> {
    let mut memo: HashMap<(Vec<i32>, usize), Vec<i32>> = HashMap::new();
    workload
        .requests
        .iter()
        .map(|r| {
            let key = (r.prompt.clone(), r.decode_steps);
            let tokens = memo
                .entry(key)
                .or_insert_with(|| oracle_tokens(cfg, &r.prompt, r.decode_steps))
                .clone();
            (r.id, tokens)
        })
        .collect()
}

#[test]
fn batched_engine_matches_solo_oracle_across_the_mesh_ladder() {
    let cfg = ServingConfig::tiny();
    // Dense Poisson arrivals against a 100us virtual step: admissions and
    // retirements interleave, so batch composition changes mid-flight.
    let workload = poisson(
        &WorkloadSpec {
            requests: 6,
            mean_interarrival_us: 120.0,
            prompt_len: (1, 3),
            decode_len: (1, 5),
            vocab: cfg.vocab,
        },
        11,
    );
    let expected = expectations(&cfg, &workload);
    let options = [
        ("overlapped", PlanOptions::default()),
        ("blocking", PlanOptions::blocking()),
    ];
    for b in [1usize, 2, 4] {
        let mesh = Mesh::new([(BATCH, b), (MODEL, 2)]).expect("mesh");
        let hw = HardwareConfig::tpu_v3_pod(mesh);
        for (sched_label, schedule) in schedules::itransformer_table2() {
            for (opt_label, opts) in &options {
                let label = format!("{sched_label}/{opt_label} on {b}x2");
                let engine = ServingEngine::new(&cfg, &hw, &schedule, opts, SEED)
                    .unwrap_or_else(|e| panic!("{label}: build failed: {e}"));
                let report = engine
                    .run(
                        &workload,
                        &RunOptions {
                            queue_capacity: 16,
                            virtual_step_us: Some(100),
                            collector: None,
                        },
                    )
                    .unwrap_or_else(|e| panic!("{label}: run failed: {e}"));
                validate_events(&report.events, &workload, cfg.slots, 16)
                    .unwrap_or_else(|e| panic!("{label}: invalid timeline: {e}"));
                assert_eq!(report.outcomes.len(), workload.requests.len(), "{label}");
                for o in &report.outcomes {
                    assert!(!o.rejected, "{label}: request {} rejected", o.id);
                    assert_eq!(
                        o.tokens, expected[&o.id],
                        "{label}: request {} diverged from the solo oracle",
                        o.id
                    );
                }
            }
        }
    }
}

/// The slot arena really is sharded: under BP+MP+MQ on the 2×2 mesh the
/// KV-cache inputs tile their slot dimension on both axes, and cache
/// outputs keep the input sharding so shards feed back device-to-device.
#[test]
fn slot_arena_shards_and_feeds_back() {
    let cfg = ServingConfig::tiny();
    let mesh = Mesh::new([(BATCH, 2), (MODEL, 2)]).expect("mesh");
    let hw = HardwareConfig::tpu_v3_pod(mesh);
    let rows = schedules::itransformer_table2();
    let (_, schedule) = rows
        .iter()
        .find(|(l, _)| *l == "BP+MP+MQ")
        .expect("BP+MP+MQ row");
    let engine =
        ServingEngine::new(&cfg, &hw, schedule, &PlanOptions::default(), SEED).expect("builds");
    assert!(engine.cache_feedback(), "cache shards must feed back");
    let model = partir_models::itransformer::build_decode_step(&cfg).expect("model");
    let n = model.num_param_tensors;
    let program = engine.program();
    // First k_cache input: params, tokens, positions, fresh, then caches.
    let axes = program.input_ctxs()[n + 3].dim_axes(3);
    assert_eq!(
        axes[0].len(),
        2,
        "k_cache0 slot dim should tile on both mesh axes, got {axes:?}"
    );
    let summary = program.interface_summary();
    assert!(summary.contains("%k_cache0"), "{summary}");
}
