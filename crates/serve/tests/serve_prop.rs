//! Propcheck properties over random seeded workloads: the engine never
//! violates slot-arena disjointness, never retires a request with
//! pending decode steps, and never overfills its bounded FIFO queue —
//! checked by replaying the engine's own event log through
//! [`validate_events`] (whose sensitivity is itself mutation-tested in
//! the crate). A companion test shows shrinking at work: a deliberately
//! false property minimises to its smallest failing workload.

use partir_mesh::{HardwareConfig, Mesh};
use partir_models::itransformer::ServingConfig;
use partir_models::schedules::{self, BATCH, MODEL};
use partir_prng::propcheck::{check_shrink, minimize};
use partir_prng::Rng;
use partir_serve::{
    shrink_workload, validate_events, Request, RunOptions, ServeEvent, ServingEngine, Workload,
};
use partir_spmd::PlanOptions;

/// One engine for the whole suite: BP+MP on the 2×2 mesh, overlapped
/// plan — compiled once, reused across every generated workload.
fn engine() -> ServingEngine {
    let cfg = ServingConfig::tiny();
    let mesh = Mesh::new([(BATCH, 2), (MODEL, 2)]).expect("mesh");
    let hw = HardwareConfig::tpu_v3_pod(mesh);
    let rows = schedules::itransformer_table2();
    let (_, schedule) = rows.iter().find(|(l, _)| *l == "BP+MP").expect("BP+MP");
    ServingEngine::new(&cfg, &hw, schedule, &PlanOptions::default(), 5).expect("engine builds")
}

fn random_workload(rng: &mut Rng, cfg: &ServingConfig) -> Workload {
    let n = rng.gen_range_in(1, 9);
    let requests = (0..n as u64)
        .map(|id| {
            let plen = rng.gen_range_in(1, 4);
            Request {
                id,
                arrival_us: rng.gen_range(2_000) as u64,
                prompt: (0..plen).map(|_| rng.gen_range(cfg.vocab) as i32).collect(),
                decode_steps: rng.gen_range_in(1, 5),
            }
        })
        .collect();
    Workload::new(requests)
}

#[test]
fn random_workloads_keep_the_serving_invariants() {
    let engine = engine();
    let cfg = *engine.config();
    check_shrink(
        "serving invariants",
        16,
        |rng| {
            let capacity = rng.gen_range_in(1, 7);
            (random_workload(rng, &cfg), capacity)
        },
        |(w, cap): &(Workload, usize)| shrink_workload(w).into_iter().map(|w| (w, *cap)).collect(),
        |(w, cap)| {
            let report = engine
                .run(
                    w,
                    &RunOptions {
                        queue_capacity: *cap,
                        virtual_step_us: Some(50),
                        collector: None,
                    },
                )
                .map_err(|e| e.to_string())?;
            validate_events(&report.events, w, cfg.slots, *cap)?;
            // Every admitted request completed with exactly its budget.
            for o in &report.outcomes {
                let req = w
                    .requests
                    .iter()
                    .find(|r| r.id == o.id)
                    .ok_or_else(|| format!("outcome for unknown request {}", o.id))?;
                if !o.rejected && o.tokens.len() != req.decode_steps {
                    return Err(format!(
                        "request {} generated {} of {} tokens",
                        o.id,
                        o.tokens.len(),
                        req.decode_steps
                    ));
                }
            }
            Ok(())
        },
    );
}

/// Peak concurrent slot occupancy, replayed from the event log.
fn peak_occupancy(events: &[ServeEvent]) -> usize {
    let mut now = 0usize;
    let mut peak = 0usize;
    for e in events {
        match e {
            ServeEvent::Admit { .. } => {
                now += 1;
                peak = peak.max(now);
            }
            ServeEvent::Retire { .. } => now -= 1,
            _ => {}
        }
    }
    peak
}

/// Shrinking demonstrably minimises: "never three slots concurrently
/// active" is false for a burst of overlapping requests, and greedy
/// minimisation grinds it down to exactly three one-token-prompt,
/// one-step requests — a local minimum where every further shrink
/// passes.
#[test]
fn shrinking_yields_a_minimal_failing_workload() {
    let engine = engine();
    let mut property = |w: &Workload| {
        let report = engine
            .run(
                w,
                &RunOptions {
                    queue_capacity: 16,
                    virtual_step_us: Some(50),
                    collector: None,
                },
            )
            .map_err(|e| e.to_string())?;
        if peak_occupancy(&report.events) >= 3 {
            return Err("three slots were concurrently active".to_string());
        }
        Ok(())
    };
    let start = Workload::new(
        (0..5u64)
            .map(|id| Request {
                id,
                arrival_us: 0,
                prompt: vec![1, 2, 3],
                decode_steps: 3,
            })
            .collect(),
    );
    let msg = property(&start).expect_err("burst violates the bound");
    let (minimal, _, evals) = minimize(start, msg, &shrink_workload, &mut property);
    assert!(evals > 0);
    assert_eq!(minimal.requests.len(), 3, "minimal burst is 3 requests");
    for r in &minimal.requests {
        assert_eq!(r.prompt.len(), 1, "prompts shrank to one token");
        assert_eq!(r.decode_steps, 1, "decode budgets shrank to one step");
    }
    // Local minimum: every further shrink candidate passes the property.
    assert!(shrink_workload(&minimal)
        .iter()
        .all(|c| property(c).is_ok()));
}
