//! Golden fake-clock serving trace: a fixed workload through the
//! engine under the virtual step clock and a fake-clock collector,
//! serialised (admission/retirement timeline, per-request outcomes,
//! percentile summary, obs trace) and pinned byte-stable alongside
//! `tests/golden/mlp_profile.trace.json`.
//!
//! Everything in the document is integer-valued and driven by
//! deterministic clocks, so the bytes cannot depend on machine, OS
//! scheduling, or debug/release codegen. Regenerate intentionally with
//! `SERVE_UPDATE_GOLDEN=1 cargo test -p partir-serve --test golden_trace`.

use std::fmt::Write as _;

use partir_mesh::{HardwareConfig, Mesh};
use partir_models::itransformer::ServingConfig;
use partir_models::schedules::{self, BATCH, MODEL};
use partir_obs::Collector;
use partir_serve::{
    validate_events, Request, RunOptions, ServeEvent, ServeReport, ServingEngine, Workload,
};
use partir_spmd::PlanOptions;

/// A hand-built workload (no float sampling — arrival times are pinned
/// literals): a burst of three at t=0 against queue capacity 2, so the
/// timeline pins the rejection path, then staggered arrivals that
/// retire mid-flight.
fn golden_workload() -> Workload {
    let req = |id, arrival_us, prompt: &[i32], decode_steps| Request {
        id,
        arrival_us,
        prompt: prompt.to_vec(),
        decode_steps,
    };
    Workload::new(vec![
        req(0, 0, &[3, 5, 1], 4),
        req(1, 0, &[7], 2),
        req(2, 0, &[2, 2], 3),
        req(3, 250, &[9, 4], 3),
        req(4, 600, &[11], 1),
    ])
}

fn event_json(e: &ServeEvent) -> String {
    match *e {
        ServeEvent::Arrive { t, id } => {
            format!("{{\"event\":\"arrive\",\"t\":{t},\"id\":{id}}}")
        }
        ServeEvent::Reject { t, id } => {
            format!("{{\"event\":\"reject\",\"t\":{t},\"id\":{id}}}")
        }
        ServeEvent::Admit { t, id, slot } => {
            format!("{{\"event\":\"admit\",\"t\":{t},\"id\":{id},\"slot\":{slot}}}")
        }
        ServeEvent::StepEnd { t, step, active } => {
            format!("{{\"event\":\"step\",\"t\":{t},\"step\":{step},\"active\":{active}}}")
        }
        ServeEvent::Retire {
            t,
            id,
            slot,
            tokens,
        } => {
            format!("{{\"event\":\"retire\",\"t\":{t},\"id\":{id},\"slot\":{slot},\"tokens\":{tokens}}}")
        }
    }
}

fn render(report: &ServeReport, obs_json: &str) -> String {
    let mut out = String::from("{\n  \"timeline\": [\n");
    for (i, e) in report.events.iter().enumerate() {
        let sep = if i + 1 == report.events.len() {
            ""
        } else {
            ","
        };
        writeln!(out, "    {}{sep}", event_json(e)).expect("write");
    }
    out.push_str("  ],\n  \"outcomes\": [\n");
    for (i, o) in report.outcomes.iter().enumerate() {
        let sep = if i + 1 == report.outcomes.len() {
            ""
        } else {
            ","
        };
        let tokens: Vec<String> = o.tokens.iter().map(|t| t.to_string()).collect();
        writeln!(
            out,
            "    {{\"id\":{},\"rejected\":{},\"slot\":{},\"arrival_us\":{},\"retired_us\":{},\
             \"tokens\":[{}]}}{sep}",
            o.id,
            o.rejected,
            o.slot.map_or(-1i64, |s| s as i64),
            o.arrival_us,
            o.retired_us.map_or(-1i64, |t| t as i64),
            tokens.join(",")
        )
        .expect("write");
    }
    writeln!(
        out,
        "  ],\n  \"summary\": {{\"steps\":{},\"elapsed_us\":{},\"total_tokens\":{},\
         \"p50_us\":{},\"p99_us\":{},\"max_queue_depth\":{},\"rejected\":{},\
         \"active_slot_steps\":{},\"slots\":{}}},",
        report.steps,
        report.elapsed_us,
        report.total_tokens(),
        report.p50_us(),
        report.p99_us(),
        report.max_queue_depth,
        report.rejected(),
        report.active_slot_steps,
        report.slots
    )
    .expect("write");
    writeln!(out, "  \"obs\": {obs_json}").expect("write");
    out.push_str("}\n");
    out
}

fn golden_document() -> String {
    let cfg = ServingConfig::tiny();
    let mesh = Mesh::new([(BATCH, 2), (MODEL, 2)]).expect("mesh");
    let hw = HardwareConfig::tpu_v3_pod(mesh);
    let rows = schedules::itransformer_table2();
    let (_, schedule) = rows.iter().find(|(l, _)| *l == "BP+MP").expect("BP+MP");
    // Blocking plan: collective schedules stay at program points. The
    // engine is run outside any `with_track` scope, so no device track
    // (whose rendezvous spans depend on OS scheduling) can appear — the
    // collector sees only the serve-side tracks.
    let engine =
        ServingEngine::new(&cfg, &hw, schedule, &PlanOptions::blocking(), 5).expect("engine");
    let collector = Collector::with_fake_clock(1_000);
    let workload = golden_workload();
    let report = engine
        .run(
            &workload,
            &RunOptions {
                queue_capacity: 2,
                virtual_step_us: Some(100),
                collector: Some(collector.clone()),
            },
        )
        .expect("run");
    validate_events(&report.events, &workload, cfg.slots, 2).expect("valid timeline");
    let trace = collector.snapshot();
    trace.check_well_formed().expect("well-formed obs trace");
    assert!(report.rejected() >= 1, "the golden pins the rejection path");
    render(&report, &trace.to_chrome_json())
}

#[test]
fn golden_serving_trace_round_trips() {
    let got = golden_document();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/serving.trace.json"
    );
    if std::env::var_os("SERVE_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("update golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        got, want,
        "fake-clock serving trace diverged from the golden; if the \
         change is intentional, regenerate with SERVE_UPDATE_GOLDEN=1"
    );
    // Reproducible within one process, byte for byte.
    assert_eq!(got, golden_document());
}
