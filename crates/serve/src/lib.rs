//! Continuous-batching serving for the IT32 KV-cache model.
//!
//! The paper's inference story (§7.1) stops at a fixed-batch serving
//! `for`-loop. This crate serves *requests*: a bounded FIFO queue fed by
//! seeded synthetic workloads ([`workload::poisson`]), an engine that
//! admits and retires sequences between decode steps of one compiled
//! plan ([`engine::ServingEngine`]), and a slotted KV-cache arena
//! sharded across the mesh exactly as the propagated partitioning
//! dictates, with in-model slot recycling.
//!
//! The batching policy is deliberately *just a driver* over the same
//! partitioned program the fixed-batch path runs — PartIR's
//! schedule-as-composition view applied to serving. That makes the
//! engine differentially testable: every request decoded here must be
//! bit-identical to the same request run alone through the original
//! serving loop (see `tests/conformance.rs`), because decode rows are
//! independent and the decode-step function restates the loop body
//! exactly (see [`partir_models::itransformer::build_decode_step`]).
//!
//! Invariants of the admission/retirement machinery — slot-arena
//! disjointness, no early retirement, bounded FIFO queueing — are
//! checked by [`trace::validate_events`] over the engine's own event
//! log and swept by propcheck with workload shrinking.

#![forbid(unsafe_code)]

pub mod engine;
pub mod metrics;
pub mod trace;
pub mod workload;

pub use engine::{RunOptions, ServeError, ServingEngine};
pub use metrics::{percentile_nearest_rank, RequestOutcome, ServeReport};
pub use trace::{validate_events, ServeEvent};
pub use workload::{poisson, shrink_workload, Request, Workload, WorkloadSpec};
