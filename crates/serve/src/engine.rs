//! The continuous-batching serving engine.
//!
//! [`ServingEngine::new`] compiles the IT32 decode step once per
//! (mesh, schedule, plan options) and keeps every large tensor
//! *resident per device*: parameters are sharded once at construction,
//! and the KV-cache slot arena — sharded across the mesh exactly as the
//! propagated partitioning dictates — is fed back shard-to-shard
//! between steps, without ever being reassembled. Each
//! [`ServingEngine::run`] step reshards only the three `[slots]`-sized
//! slot-addressed inputs (current token, position, fresh flag) and
//! unshards only the `[slots]` next-token output.
//!
//! Between steps the engine admits queued requests into free slots and
//! retires finished ones. Slot recycling is in-model: an admitted slot
//! raises its `fresh` flag for one step, which the decode function
//! reads as "this slot's cache is zeros" — so a retired request's stale
//! cache shards never need host-side surgery.

use std::collections::VecDeque;
use std::time::Instant;

use partir_ir::{IrError, Literal, Shape};
use partir_mesh::HardwareConfig;
use partir_models::itransformer::{build_decode_step, ServingConfig};
use partir_models::train::synthetic_inputs;
use partir_obs::Collector;
use partir_sched::{partir_jit, SchedError, Schedule};
use partir_spmd::{
    CompiledPlan, PlanError, PlanOptions, RuntimeConfig, RuntimeError, SpmdProgram, ThreadedRuntime,
};

use crate::metrics::{RequestOutcome, ServeReport};
use crate::trace::ServeEvent;
use crate::workload::{Request, Workload};

/// Anything that can go wrong building or running the engine.
#[derive(Debug)]
pub enum ServeError {
    /// Partitioning, lowering or plan compilation failed.
    Build(String),
    /// The threaded runtime failed mid-step.
    Runtime(RuntimeError),
    /// The workload does not fit the engine's model shape.
    Workload(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Build(m) => write!(f, "engine build failed: {m}"),
            ServeError::Runtime(e) => write!(f, "decode step failed: {e}"),
            ServeError::Workload(m) => write!(f, "workload rejected: {m}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<RuntimeError> for ServeError {
    fn from(e: RuntimeError) -> Self {
        ServeError::Runtime(e)
    }
}

impl From<SchedError> for ServeError {
    fn from(e: SchedError) -> Self {
        ServeError::Build(e.to_string())
    }
}

impl From<PlanError> for ServeError {
    fn from(e: PlanError) -> Self {
        ServeError::Build(e.to_string())
    }
}

impl From<IrError> for ServeError {
    fn from(e: IrError) -> Self {
        ServeError::Build(e.to_string())
    }
}

/// Per-run knobs (the compiled plan is fixed per engine).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Bounded FIFO admission queue; arrivals beyond it are rejected.
    pub queue_capacity: usize,
    /// `Some(step_us)`: a deterministic virtual clock that advances by
    /// `step_us` per decode step and jumps to the next arrival when
    /// idle — timelines and percentiles depend only on the workload
    /// (golden traces). `None`: wall-clock timestamps (benchmarks).
    pub virtual_step_us: Option<u64>,
    /// Collector for serving counters and per-request spans. Request
    /// spans land on per-slot tracks (`serve.slot{N}`) — slot exclusivity
    /// makes them well-formed; queue/step counters land on `serve`.
    pub collector: Option<Collector>,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            queue_capacity: 64,
            virtual_step_us: None,
            collector: None,
        }
    }
}

/// A request occupying a slot.
struct Active {
    req: Request,
    admitted_us: u64,
    tokens: Vec<i32>,
    /// Cache position the *next* step writes/attends to.
    pos: i32,
    /// Token the next step embeds.
    cur: i32,
    /// One step of in-model cache zeroing after admission.
    fresh: bool,
}

/// The compiled, sharded decode step plus everything resident on the
/// devices (see the module docs).
pub struct ServingEngine {
    cfg: ServingConfig,
    program: SpmdProgram,
    plan: CompiledPlan,
    runtime: ThreadedRuntime,
    num_params: usize,
    /// Parameter shards, `[device][param]` — sharded once.
    param_shards: Vec<Vec<Literal>>,
    /// Zeroed cache shards, `[device][cache]` — each run starts here.
    initial_cache_shards: Vec<Vec<Literal>>,
    /// Whether every cache output context equals its input context, so
    /// shards feed back device-to-device with no reassembly.
    cache_feedback: bool,
}

impl ServingEngine {
    /// Builds the decode step for `cfg`, partitions it with `schedule`
    /// on `hw`, compiles the plan with `options`, and shards parameters
    /// (drawn from [`synthetic_inputs`] with `seed`, matching the
    /// oracle's) and the zeroed cache arena onto the devices.
    ///
    /// # Errors
    ///
    /// Fails if the slot arena does not divide over the mesh, or on any
    /// partitioning/compilation error.
    pub fn new(
        cfg: &ServingConfig,
        hw: &HardwareConfig,
        schedule: &Schedule,
        options: &PlanOptions,
        seed: u64,
    ) -> Result<Self, ServeError> {
        let model = build_decode_step(cfg)?;
        let jitted = partir_jit(&model.func, hw, schedule)?;
        let program = jitted.program;
        let plan = program.compile_with(options)?;
        let n = model.num_param_tensors;
        let devices = program.mesh().num_devices();

        let inputs = synthetic_inputs(&model, seed);
        let mut param_shards: Vec<Vec<Literal>> = vec![Vec::with_capacity(n); devices];
        for (i, lit) in inputs.iter().take(n).enumerate() {
            for (d, shard) in program.shard_input(i, lit)?.into_iter().enumerate() {
                param_shards[d].push(shard);
            }
        }
        let num_caches = 2 * cfg.layers;
        let mut initial_cache_shards: Vec<Vec<Literal>> =
            vec![Vec::with_capacity(num_caches); devices];
        for j in 0..num_caches {
            let idx = n + 3 + j;
            let ty = model.func.value_type(model.func.params()[idx]);
            let zeros = Literal::zeros(ty);
            for (d, shard) in program.shard_input(idx, &zeros)?.into_iter().enumerate() {
                initial_cache_shards[d].push(shard);
            }
        }
        let cache_feedback = (0..num_caches)
            .all(|j| program.output_ctxs()[1 + j] == program.input_ctxs()[n + 3 + j]);

        Ok(ServingEngine {
            cfg: *cfg,
            plan,
            runtime: ThreadedRuntime::new(RuntimeConfig::default()),
            num_params: n,
            param_shards,
            initial_cache_shards,
            cache_feedback,
            program,
        })
    }

    /// The model shape the engine serves.
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// The lowered program (interface summaries, traffic predictions).
    pub fn program(&self) -> &SpmdProgram {
        &self.program
    }

    /// The compiled plan (collective windows, arena size).
    pub fn plan(&self) -> &CompiledPlan {
        &self.plan
    }

    /// Whether cache shards feed back device-to-device without
    /// reassembly (true for every Table 2 IT32 schedule).
    pub fn cache_feedback(&self) -> bool {
        self.cache_feedback
    }

    /// Serves `workload` to completion: admits requests into free slots
    /// between decode steps, retires them when their decode budget is
    /// generated, recycles slots, and reports every outcome plus the
    /// full event timeline.
    ///
    /// # Errors
    ///
    /// Fails if a request cannot fit a cache slot, or on any runtime
    /// failure mid-step.
    pub fn run(&self, workload: &Workload, opts: &RunOptions) -> Result<ServeReport, ServeError> {
        for r in &workload.requests {
            if r.prompt.is_empty() || r.decode_steps == 0 {
                return Err(ServeError::Workload(format!(
                    "request {} needs a non-empty prompt and decode budget",
                    r.id
                )));
            }
            if r.seq_len() > self.cfg.max_seq {
                return Err(ServeError::Workload(format!(
                    "request {} needs {} cache positions, slots hold {}",
                    r.id,
                    r.seq_len(),
                    self.cfg.max_seq
                )));
            }
            if r.prompt
                .iter()
                .any(|&t| t < 0 || t >= self.cfg.vocab as i32)
            {
                return Err(ServeError::Workload(format!(
                    "request {} has tokens outside the vocabulary",
                    r.id
                )));
            }
        }

        let s = self.cfg.slots;
        let collector = opts.collector.clone().unwrap_or_else(Collector::noop);
        let start = Instant::now();
        let mut vnow: u64 = 0;
        // Idle time skipped under wall clock (see below): the engine
        // never sleeps, so fast-forwarding to the next arrival keeps the
        // engine clock on the workload's timeline.
        let mut skip: u64 = 0;
        let wall = opts.virtual_step_us.is_none();
        let now = |vnow: u64, skip: u64| -> u64 {
            if wall {
                start.elapsed().as_micros() as u64 + skip
            } else {
                vnow
            }
        };

        let mut pending: VecDeque<Request> = workload.requests.iter().cloned().collect();
        let mut queue: VecDeque<Request> = VecDeque::new();
        let mut slots: Vec<Option<Active>> = (0..s).map(|_| None).collect();
        let mut cache_shards = self.initial_cache_shards.clone();
        let mut outcomes: Vec<RequestOutcome> = Vec::new();
        let mut events: Vec<ServeEvent> = Vec::new();
        let mut steps = 0u64;
        let mut active_slot_steps = 0u64;
        let mut max_queue_depth = 0usize;

        loop {
            let idle = slots.iter().all(Option::is_none) && queue.is_empty();
            if idle {
                // Fast-forward the engine clock to the next arrival
                // rather than sleeping (or, under wall clock, ingesting
                // a request before its own timestamp).
                match pending.front() {
                    Some(r) => {
                        if wall {
                            skip += r.arrival_us.saturating_sub(now(vnow, skip));
                        } else {
                            vnow = vnow.max(r.arrival_us);
                        }
                    }
                    None => break,
                }
            }
            let mut t = now(vnow, skip);
            // Ingest due arrivals.
            while let Some(r) = pending.front() {
                if r.arrival_us > t {
                    break;
                }
                let r = pending.pop_front().expect("front exists");
                t = now(vnow, skip).max(t);
                events.push(ServeEvent::Arrive { t, id: r.id });
                if queue.len() >= opts.queue_capacity {
                    events.push(ServeEvent::Reject { t, id: r.id });
                    collector.counter_on("serve", "serve.rejected", 1.0);
                    outcomes.push(RequestOutcome {
                        id: r.id,
                        tokens: Vec::new(),
                        arrival_us: r.arrival_us,
                        admitted_us: None,
                        retired_us: None,
                        slot: None,
                        rejected: true,
                    });
                } else {
                    queue.push_back(r);
                    max_queue_depth = max_queue_depth.max(queue.len());
                }
            }
            // Admit into free slots, FIFO.
            while !queue.is_empty() {
                let Some(slot) = slots.iter().position(Option::is_none) else {
                    break;
                };
                let req = queue.pop_front().expect("non-empty");
                events.push(ServeEvent::Admit {
                    t,
                    id: req.id,
                    slot,
                });
                collector.counter_on("serve", "serve.admitted", 1.0);
                collector.begin_on(&format!("serve.slot{slot}"), format!("request.{}", req.id));
                let pos = req.prompt.len() as i32 - 1;
                let cur = *req.prompt.last().expect("non-empty prompt");
                slots[slot] = Some(Active {
                    req,
                    admitted_us: t,
                    tokens: Vec::new(),
                    pos,
                    cur,
                    fresh: true,
                });
            }
            collector.counter_on("serve", "serve.queue_depth", queue.len() as f64);
            let active = slots.iter().filter(|a| a.is_some()).count();
            if active == 0 {
                continue;
            }

            // One decode step over the arena. Inactive slots run at
            // position 0 with token 0; rows are independent, so their
            // garbage stays theirs.
            let mut tok = vec![0i32; s];
            let mut pos = vec![0i32; s];
            let mut fresh = vec![0i32; s];
            for (i, a) in slots.iter().enumerate() {
                if let Some(a) = a {
                    tok[i] = a.cur;
                    pos[i] = a.pos;
                    fresh[i] = i32::from(a.fresh);
                }
            }
            collector.begin_on("serve", "serve.step");
            let next = self.step(&tok, &pos, &fresh, &mut cache_shards)?;
            collector.end_on("serve");
            steps += 1;
            active_slot_steps += active as u64;
            if let Some(step_us) = opts.virtual_step_us {
                vnow += step_us;
            }
            let t_end = now(vnow, skip);
            events.push(ServeEvent::StepEnd {
                t: t_end,
                step: steps - 1,
                active,
            });
            collector.counter_on("serve", "serve.tokens", active as f64);

            // Record tokens; retire finished requests.
            for (i, entry) in slots.iter_mut().enumerate() {
                let Some(a) = entry.as_mut() else { continue };
                let token = next[i];
                a.tokens.push(token);
                a.cur = token;
                a.pos += 1;
                a.fresh = false;
                if a.tokens.len() == a.req.decode_steps {
                    let a = entry.take().expect("occupied");
                    events.push(ServeEvent::Retire {
                        t: t_end,
                        id: a.req.id,
                        slot: i,
                        tokens: a.tokens.len(),
                    });
                    collector.counter_on("serve", "serve.retired", 1.0);
                    collector.end_on(&format!("serve.slot{i}"));
                    outcomes.push(RequestOutcome {
                        id: a.req.id,
                        tokens: a.tokens,
                        arrival_us: a.req.arrival_us,
                        admitted_us: Some(a.admitted_us),
                        retired_us: Some(t_end),
                        slot: Some(i),
                        rejected: false,
                    });
                }
            }
        }

        let elapsed_us = now(vnow, skip).max(1);
        outcomes.sort_by_key(|o| o.id);
        let report = ServeReport {
            outcomes,
            events,
            steps,
            elapsed_us,
            max_queue_depth,
            active_slot_steps,
            slots: s,
        };
        collector.counter_on("serve", "serve.p50_us", report.p50_us() as f64);
        collector.counter_on("serve", "serve.p99_us", report.p99_us() as f64);
        Ok(report)
    }

    /// Runs one decode step: shards the three slot-addressed inputs,
    /// executes the compiled plan with the resident parameter and cache
    /// shards, feeds cache outputs back, and unshards next tokens.
    fn step(
        &self,
        tok: &[i32],
        pos: &[i32],
        fresh: &[i32],
        cache_shards: &mut [Vec<Literal>],
    ) -> Result<Vec<i32>, ServeError> {
        let s = self.cfg.slots;
        let n = self.num_params;
        let shape = Shape::from([s]);
        let small = [
            Literal::from_i32(tok.to_vec(), shape.clone())?,
            Literal::from_i32(pos.to_vec(), shape.clone())?,
            Literal::from_i32(fresh.to_vec(), shape)?,
        ];
        let devices = self.program.mesh().num_devices();
        let mut per_device: Vec<Vec<Literal>> = (0..devices)
            .map(|d| {
                let mut v = Vec::with_capacity(n + 3 + cache_shards[d].len());
                v.extend(self.param_shards[d].iter().cloned());
                v
            })
            .collect();
        for (j, lit) in small.iter().enumerate() {
            for (d, shard) in self
                .program
                .shard_input(n + j, lit)?
                .into_iter()
                .enumerate()
            {
                per_device[d].push(shard);
            }
        }
        for (d, dev) in per_device.iter_mut().enumerate() {
            dev.extend(cache_shards[d].iter().cloned());
        }
        let outcome = self.runtime.run_plan(&self.plan, &per_device)?;
        if self.cache_feedback {
            for (d, out) in outcome.outputs.iter().enumerate() {
                cache_shards[d] = out[1..].to_vec();
            }
        } else {
            // Reassemble and re-shard: correct for any sharding, at the
            // cost of moving the arena through the host each step.
            let num_caches = cache_shards[0].len();
            for j in 0..num_caches {
                let shards: Vec<Literal> =
                    outcome.outputs.iter().map(|o| o[1 + j].clone()).collect();
                let global = self.program.unshard_output(1 + j, &shards)?;
                for (d, shard) in self
                    .program
                    .shard_input(n + 3 + j, &global)?
                    .into_iter()
                    .enumerate()
                {
                    cache_shards[d][j] = shard;
                }
            }
        }
        let tok_shards: Vec<Literal> = outcome.outputs.iter().map(|o| o[0].clone()).collect();
        let next = self.program.unshard_output(0, &tok_shards)?;
        Ok(next.as_i32().expect("i32 next tokens").to_vec())
    }
}
