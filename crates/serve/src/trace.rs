//! The engine's host-side event log and its invariant checker.
//!
//! Every run of the [`crate::engine::ServingEngine`] records a
//! [`ServeEvent`] timeline (admissions, retirements, rejections, step
//! boundaries). [`validate_events`] replays it against the workload and
//! checks the slot-arena and queue invariants the propcheck suite
//! sweeps over random workloads:
//!
//! 1. every request arrives exactly once, at its workload arrival time;
//! 2. admissions go to an in-bounds, *free* slot (arena disjointness);
//! 3. a request retires from the slot it was admitted to, with exactly
//!    its decode budget generated — never with pending decode steps;
//! 4. the queue never holds more than its capacity;
//! 5. admissions are FIFO in queue order;
//! 6. every request is eventually retired or rejected.

use std::collections::HashMap;

use crate::workload::Workload;

/// One host-side serving event (times in engine-clock microseconds).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeEvent {
    /// A request reached the engine.
    Arrive {
        /// Engine-clock time.
        t: u64,
        /// Request id.
        id: u64,
    },
    /// The queue was full; the request was dropped.
    Reject {
        /// Engine-clock time.
        t: u64,
        /// Request id.
        id: u64,
    },
    /// A queued request took ownership of a slot.
    Admit {
        /// Engine-clock time.
        t: u64,
        /// Request id.
        id: u64,
        /// Slot index in the arena.
        slot: usize,
    },
    /// One decode step of the compiled plan finished.
    StepEnd {
        /// Engine-clock time.
        t: u64,
        /// Step ordinal (0-based).
        step: u64,
        /// Slots that were active during the step.
        active: usize,
    },
    /// A request finished its decode budget and released its slot.
    Retire {
        /// Engine-clock time.
        t: u64,
        /// Request id.
        id: u64,
        /// Slot index released.
        slot: usize,
        /// Tokens generated for the request.
        tokens: usize,
    },
}

impl ServeEvent {
    /// The event's timestamp.
    pub fn time(&self) -> u64 {
        match self {
            ServeEvent::Arrive { t, .. }
            | ServeEvent::Reject { t, .. }
            | ServeEvent::Admit { t, .. }
            | ServeEvent::StepEnd { t, .. }
            | ServeEvent::Retire { t, .. } => *t,
        }
    }
}

/// Replays an event log against its workload and checks the serving
/// invariants (see the module docs). `slots` and `queue_capacity` are
/// the engine limits the run was configured with.
///
/// # Errors
///
/// Describes the first violation found.
pub fn validate_events(
    events: &[ServeEvent],
    workload: &Workload,
    slots: usize,
    queue_capacity: usize,
) -> Result<(), String> {
    let budget: HashMap<u64, usize> = workload
        .requests
        .iter()
        .map(|r| (r.id, r.decode_steps))
        .collect();
    let mut arrived: HashMap<u64, u64> = HashMap::new(); // id -> arrival order index
    let mut queue: Vec<u64> = Vec::new(); // ids waiting, FIFO
    let mut slot_owner: Vec<Option<u64>> = vec![None; slots];
    let mut admitted_slot: HashMap<u64, usize> = HashMap::new();
    let mut settled: HashMap<u64, &'static str> = HashMap::new(); // retired/rejected
    let mut last_t = 0u64;
    let mut arrival_order = 0u64;
    // Set when an Arrive overfilled the queue by one: the very next
    // event must be a Reject of that id, or the bound is violated.
    let mut expect_reject: Option<u64> = None;
    for e in events {
        if e.time() < last_t {
            return Err(format!("time went backwards at {e:?} (last {last_t})"));
        }
        last_t = e.time();
        if let Some(id) = expect_reject.take() {
            if !matches!(*e, ServeEvent::Reject { id: rid, .. } if rid == id) {
                return Err(format!(
                    "queue depth {} exceeds capacity {queue_capacity}: arrival of {id} was \
                     not immediately rejected (next event {e:?})",
                    queue.len()
                ));
            }
        }
        match *e {
            ServeEvent::Arrive { t, id } => {
                let Some(req) = workload.requests.iter().find(|r| r.id == id) else {
                    return Err(format!("arrival of unknown request {id}"));
                };
                if req.arrival_us > t {
                    return Err(format!(
                        "request {id} arrived at {t} before its workload time {}",
                        req.arrival_us
                    ));
                }
                if arrived.insert(id, arrival_order).is_some() {
                    return Err(format!("request {id} arrived twice"));
                }
                arrival_order += 1;
                queue.push(id);
            }
            ServeEvent::Reject { t: _, id } => {
                match queue.last() {
                    Some(&last) if last == id => {
                        queue.pop();
                    }
                    _ => return Err(format!("reject of {id} which is not the newest arrival")),
                }
                if settled.insert(id, "rejected").is_some() {
                    return Err(format!("request {id} settled twice"));
                }
            }
            ServeEvent::Admit { t: _, id, slot } => {
                if !arrived.contains_key(&id) {
                    return Err(format!("request {id} admitted before arriving"));
                }
                match queue.first() {
                    Some(&head) if head == id => {
                        queue.remove(0);
                    }
                    Some(&head) => {
                        return Err(format!(
                            "admission out of FIFO order: admitted {id} while {head} was at \
                             the head of the queue"
                        ))
                    }
                    None => return Err(format!("request {id} admitted with an empty queue")),
                }
                if slot >= slots {
                    return Err(format!("request {id} admitted to out-of-range slot {slot}"));
                }
                if let Some(owner) = slot_owner[slot] {
                    return Err(format!(
                        "slot {slot} double-booked: admitted {id} while owned by {owner}"
                    ));
                }
                slot_owner[slot] = Some(id);
                admitted_slot.insert(id, slot);
            }
            ServeEvent::StepEnd { .. } => {}
            ServeEvent::Retire {
                t: _,
                id,
                slot,
                tokens,
            } => {
                if admitted_slot.get(&id) != Some(&slot) {
                    return Err(format!(
                        "request {id} retired from slot {slot} it does not own"
                    ));
                }
                if slot_owner[slot] != Some(id) {
                    return Err(format!("slot {slot} freed by non-owner {id}"));
                }
                slot_owner[slot] = None;
                let want = budget.get(&id).copied().unwrap_or(0);
                if tokens != want {
                    return Err(format!(
                        "request {id} retired with {tokens} token(s), decode budget is {want}"
                    ));
                }
                if settled.insert(id, "retired").is_some() {
                    return Err(format!("request {id} settled twice"));
                }
            }
        }
        if queue.len() > queue_capacity {
            // Legal only as the one-event transient between an arrival
            // and its rejection.
            match *e {
                ServeEvent::Arrive { id, .. } if queue.len() == queue_capacity + 1 => {
                    expect_reject = Some(id);
                }
                _ => {
                    return Err(format!(
                        "queue depth {} exceeds capacity {queue_capacity} after {e:?}",
                        queue.len()
                    ))
                }
            }
        }
    }
    if let Some(id) = expect_reject {
        return Err(format!(
            "queue depth exceeds capacity {queue_capacity}: arrival of {id} was never rejected"
        ));
    }
    for r in &workload.requests {
        if !settled.contains_key(&r.id) {
            return Err(format!("request {} never retired or rejected", r.id));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Request;

    fn workload() -> Workload {
        Workload::new(vec![
            Request {
                id: 0,
                arrival_us: 0,
                prompt: vec![1],
                decode_steps: 2,
            },
            Request {
                id: 1,
                arrival_us: 5,
                prompt: vec![2, 3],
                decode_steps: 1,
            },
        ])
    }

    fn good_events() -> Vec<ServeEvent> {
        vec![
            ServeEvent::Arrive { t: 0, id: 0 },
            ServeEvent::Admit {
                t: 0,
                id: 0,
                slot: 1,
            },
            ServeEvent::StepEnd {
                t: 10,
                step: 0,
                active: 1,
            },
            ServeEvent::Arrive { t: 10, id: 1 },
            ServeEvent::Admit {
                t: 10,
                id: 1,
                slot: 0,
            },
            ServeEvent::StepEnd {
                t: 20,
                step: 1,
                active: 2,
            },
            ServeEvent::Retire {
                t: 20,
                id: 0,
                slot: 1,
                tokens: 2,
            },
            ServeEvent::Retire {
                t: 20,
                id: 1,
                slot: 0,
                tokens: 1,
            },
        ]
    }

    #[test]
    fn accepts_a_clean_timeline() {
        validate_events(&good_events(), &workload(), 2, 4).expect("valid");
    }

    // Mutation tests: each corruption of the clean timeline must be
    // caught — this is what makes the propcheck property trustworthy.

    #[test]
    fn rejects_double_booked_slots() {
        let mut ev = good_events();
        ev[4] = ServeEvent::Admit {
            t: 10,
            id: 1,
            slot: 1,
        };
        let err = validate_events(&ev, &workload(), 2, 4).unwrap_err();
        assert!(err.contains("double-booked"), "{err}");
    }

    #[test]
    fn rejects_early_retirement() {
        let mut ev = good_events();
        ev[6] = ServeEvent::Retire {
            t: 20,
            id: 0,
            slot: 1,
            tokens: 1,
        };
        let err = validate_events(&ev, &workload(), 2, 4).unwrap_err();
        assert!(err.contains("decode budget"), "{err}");
    }

    #[test]
    fn rejects_retiring_a_foreign_slot() {
        let mut ev = good_events();
        ev[6] = ServeEvent::Retire {
            t: 20,
            id: 0,
            slot: 0,
            tokens: 2,
        };
        let err = validate_events(&ev, &workload(), 2, 4).unwrap_err();
        assert!(err.contains("does not own"), "{err}");
    }

    #[test]
    fn rejects_queue_overflow() {
        let ev = good_events();
        let err = validate_events(&ev, &workload(), 2, 0).unwrap_err();
        assert!(err.contains("exceeds capacity"), "{err}");
    }

    #[test]
    fn rejects_non_fifo_admission() {
        let ev = vec![
            ServeEvent::Arrive { t: 0, id: 0 },
            ServeEvent::Arrive { t: 5, id: 1 },
            ServeEvent::Admit {
                t: 5,
                id: 1,
                slot: 0,
            },
        ];
        let err = validate_events(&ev, &workload(), 2, 4).unwrap_err();
        assert!(err.contains("FIFO"), "{err}");
    }

    #[test]
    fn rejects_a_lost_request() {
        let mut ev = good_events();
        ev.truncate(7); // request 1 never retires
        let err = validate_events(&ev, &workload(), 2, 4).unwrap_err();
        assert!(err.contains("never retired"), "{err}");
    }
}
