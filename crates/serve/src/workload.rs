//! Seeded synthetic serving workloads.
//!
//! A [`Workload`] is a list of [`Request`]s sorted by arrival time;
//! [`poisson`] draws one from a [`WorkloadSpec`] with exponential
//! inter-arrival gaps and uniformly mixed prompt/decode lengths, fully
//! determined by the seed. The property tests additionally use
//! [`shrink_workload`] to minimise failing workloads.

use partir_prng::Rng;

/// One inference request: a tokenised prompt plus a decode budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Stable identifier (unique within a workload).
    pub id: u64,
    /// Arrival time, microseconds from workload start.
    pub arrival_us: u64,
    /// Prompt token ids (at least one — the serving semantics read the
    /// last prompt token as the first decode input).
    pub prompt: Vec<i32>,
    /// Tokens to generate (at least one).
    pub decode_steps: usize,
}

impl Request {
    /// Cache positions this request occupies: `prompt + decode`.
    pub fn seq_len(&self) -> usize {
        self.prompt.len() + self.decode_steps
    }
}

/// A batch of requests, sorted by `(arrival_us, id)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Workload {
    /// Requests in arrival order.
    pub requests: Vec<Request>,
}

impl Workload {
    /// Sorts `requests` into arrival order.
    pub fn new(mut requests: Vec<Request>) -> Self {
        requests.sort_by_key(|r| (r.arrival_us, r.id));
        Workload { requests }
    }

    /// Total decode work across all requests, in engine steps.
    pub fn total_decode_steps(&self) -> usize {
        self.requests.iter().map(|r| r.decode_steps).sum()
    }

    /// The longest `prompt + decode` over all requests — must fit the
    /// model's `max_seq`.
    pub fn max_seq_len(&self) -> usize {
        self.requests
            .iter()
            .map(Request::seq_len)
            .max()
            .unwrap_or(0)
    }
}

/// Parameters of a [`poisson`] workload draw.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadSpec {
    /// Number of requests.
    pub requests: usize,
    /// Mean exponential inter-arrival gap, microseconds.
    pub mean_interarrival_us: f64,
    /// Inclusive prompt-length range (min ≥ 1).
    pub prompt_len: (usize, usize),
    /// Inclusive decode-length range (min ≥ 1).
    pub decode_len: (usize, usize),
    /// Prompt tokens are drawn uniformly from `[0, vocab)`.
    pub vocab: usize,
}

/// Draws a seeded Poisson-arrival workload: exponential inter-arrival
/// gaps of the given mean, prompt/decode lengths uniform in their
/// ranges, prompt tokens uniform over the vocabulary.
pub fn poisson(spec: &WorkloadSpec, seed: u64) -> Workload {
    assert!(spec.prompt_len.0 >= 1, "prompts need at least one token");
    assert!(spec.decode_len.0 >= 1, "decode needs at least one step");
    let mut rng = Rng::seed_from_u64(seed);
    let mut now = 0.0f64;
    let requests = (0..spec.requests as u64)
        .map(|id| {
            now += -(1.0 - rng.next_f64()).ln() * spec.mean_interarrival_us;
            let plen = rng.gen_range_in(spec.prompt_len.0, spec.prompt_len.1 + 1);
            let prompt = (0..plen)
                .map(|_| rng.gen_range(spec.vocab) as i32)
                .collect();
            Request {
                id,
                arrival_us: now as u64,
                prompt,
                decode_steps: rng.gen_range_in(spec.decode_len.0, spec.decode_len.1 + 1),
            }
        })
        .collect();
    Workload::new(requests)
}

/// Shrink candidates for a failing workload, for
/// [`partir_prng::propcheck::check_shrink`]: drop one request, shave one
/// decode step, or truncate one prompt to a single token. Every
/// candidate is strictly smaller, so greedy minimisation terminates.
pub fn shrink_workload(w: &Workload) -> Vec<Workload> {
    let mut out = Vec::new();
    for i in 0..w.requests.len() {
        let mut c = w.clone();
        c.requests.remove(i);
        out.push(c);
    }
    for i in 0..w.requests.len() {
        if w.requests[i].decode_steps > 1 {
            let mut c = w.clone();
            c.requests[i].decode_steps -= 1;
            out.push(c);
        }
        if w.requests[i].prompt.len() > 1 {
            let mut c = w.clone();
            c.requests[i].prompt.truncate(1);
            out.push(c);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            requests: 32,
            mean_interarrival_us: 500.0,
            prompt_len: (1, 4),
            decode_len: (1, 6),
            vocab: 16,
        }
    }

    #[test]
    fn poisson_is_deterministic_and_in_spec() {
        let w = poisson(&spec(), 7);
        assert_eq!(w, poisson(&spec(), 7));
        assert_ne!(w, poisson(&spec(), 8));
        assert_eq!(w.requests.len(), 32);
        let mut prev = 0;
        for r in &w.requests {
            assert!(r.arrival_us >= prev, "sorted by arrival");
            prev = r.arrival_us;
            assert!((1..=4).contains(&r.prompt.len()));
            assert!((1..=6).contains(&r.decode_steps));
            assert!(r.prompt.iter().all(|&t| (0..16).contains(&t)));
        }
        assert!(w.max_seq_len() <= 10);
    }

    #[test]
    fn shrink_candidates_are_strictly_smaller() {
        let w = poisson(&spec(), 3);
        let size = |w: &Workload| {
            w.requests
                .iter()
                .map(|r| r.prompt.len() + r.decode_steps)
                .sum::<usize>()
        };
        let candidates = shrink_workload(&w);
        assert!(!candidates.is_empty());
        for c in &candidates {
            assert!(size(c) < size(&w));
        }
    }
}
