//! Per-run serving metrics: request outcomes, latency percentiles,
//! throughput and utilisation.

use crate::trace::ServeEvent;

/// What happened to one request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RequestOutcome {
    /// Request id.
    pub id: u64,
    /// Generated tokens (empty if rejected).
    pub tokens: Vec<i32>,
    /// Workload arrival time, microseconds.
    pub arrival_us: u64,
    /// When the request took a slot.
    pub admitted_us: Option<u64>,
    /// When its last token was generated.
    pub retired_us: Option<u64>,
    /// The slot it occupied.
    pub slot: Option<usize>,
    /// Dropped on arrival: the queue was full.
    pub rejected: bool,
}

impl RequestOutcome {
    /// Arrival-to-retirement latency, if the request completed.
    pub fn latency_us(&self) -> Option<u64> {
        self.retired_us.map(|r| r.saturating_sub(self.arrival_us))
    }
}

/// The result of one [`crate::engine::ServingEngine::run`].
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Per-request outcomes, sorted by id.
    pub outcomes: Vec<RequestOutcome>,
    /// The full host-side event timeline (validated by
    /// [`crate::trace::validate_events`]).
    pub events: Vec<ServeEvent>,
    /// Decode steps executed.
    pub steps: u64,
    /// Run duration, microseconds (virtual or wall, per the clock).
    pub elapsed_us: u64,
    /// Deepest the admission queue ever got.
    pub max_queue_depth: usize,
    /// Sum over steps of slots active in that step.
    pub active_slot_steps: u64,
    /// Slot-arena size.
    pub slots: usize,
}

impl ServeReport {
    /// Outcomes that completed (admitted and retired).
    pub fn completed(&self) -> impl Iterator<Item = &RequestOutcome> {
        self.outcomes.iter().filter(|o| o.retired_us.is_some())
    }

    /// Completed-request latencies, sorted ascending.
    pub fn latencies_us(&self) -> Vec<u64> {
        let mut l: Vec<u64> = self
            .completed()
            .filter_map(RequestOutcome::latency_us)
            .collect();
        l.sort_unstable();
        l
    }

    /// Median arrival-to-retirement latency (nearest-rank; 0 if nothing
    /// completed).
    pub fn p50_us(&self) -> u64 {
        percentile_nearest_rank(&self.latencies_us(), 50.0)
    }

    /// Tail (p99) arrival-to-retirement latency.
    pub fn p99_us(&self) -> u64 {
        percentile_nearest_rank(&self.latencies_us(), 99.0)
    }

    /// Tokens generated across all completed requests.
    pub fn total_tokens(&self) -> u64 {
        self.outcomes.iter().map(|o| o.tokens.len() as u64).sum()
    }

    /// Generated tokens per second of run time.
    pub fn tokens_per_sec(&self) -> f64 {
        self.total_tokens() as f64 * 1e6 / self.elapsed_us as f64
    }

    /// Fraction of slot-steps that decoded a live request.
    pub fn slot_utilization(&self) -> f64 {
        if self.steps == 0 {
            return 0.0;
        }
        self.active_slot_steps as f64 / (self.steps * self.slots as u64) as f64
    }

    /// Requests dropped at the queue.
    pub fn rejected(&self) -> usize {
        self.outcomes.iter().filter(|o| o.rejected).count()
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "{} requests ({} rejected), {} tokens in {} steps; p50 {}us p99 {}us, \
             {:.0} tok/s, util {:.2}, max queue {}",
            self.outcomes.len(),
            self.rejected(),
            self.total_tokens(),
            self.steps,
            self.p50_us(),
            self.p99_us(),
            self.tokens_per_sec(),
            self.slot_utilization(),
            self.max_queue_depth
        )
    }
}

/// Nearest-rank percentile of an ascending-sorted sample (0 on empty).
pub fn percentile_nearest_rank(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nearest_rank_percentiles() {
        let s: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile_nearest_rank(&s, 50.0), 50);
        assert_eq!(percentile_nearest_rank(&s, 99.0), 99);
        assert_eq!(percentile_nearest_rank(&s, 100.0), 100);
        assert_eq!(percentile_nearest_rank(&[7], 50.0), 7);
        assert_eq!(percentile_nearest_rank(&[], 50.0), 0);
    }

    #[test]
    fn report_metrics_compose() {
        let outcome = |id, arrival, retired| RequestOutcome {
            id,
            tokens: vec![1, 2],
            arrival_us: arrival,
            admitted_us: Some(arrival),
            retired_us: Some(retired),
            slot: Some(0),
            rejected: false,
        };
        let report = ServeReport {
            outcomes: vec![
                outcome(0, 0, 100),
                outcome(1, 50, 250),
                RequestOutcome {
                    id: 2,
                    tokens: vec![],
                    arrival_us: 60,
                    admitted_us: None,
                    retired_us: None,
                    slot: None,
                    rejected: true,
                },
            ],
            events: Vec::new(),
            steps: 4,
            elapsed_us: 1_000_000,
            max_queue_depth: 2,
            active_slot_steps: 6,
            slots: 2,
        };
        assert_eq!(report.latencies_us(), vec![100, 200]);
        assert_eq!(report.p50_us(), 100);
        assert_eq!(report.p99_us(), 200);
        assert_eq!(report.total_tokens(), 4);
        assert_eq!(report.rejected(), 1);
        assert!((report.tokens_per_sec() - 4.0).abs() < 1e-9);
        assert!((report.slot_utilization() - 0.75).abs() < 1e-9);
        assert!(report.summary().contains("p50 100us"));
    }
}
