//! Cost-model behaviour tests: the simulator must rank collectives and
//! placements the way the paper's reasoning assumes (Appendix A.5).

use partir_ir::{Collective, ReduceOp, TensorType};
use partir_mesh::{HardwareConfig, Mesh, Topology};
use partir_sim::collective_time;

fn tensor() -> TensorType {
    TensorType::f32([1024, 1024])
}

#[test]
fn faster_links_make_cheaper_collectives() {
    let mesh = Mesh::new([("fast", 4), ("slow", 4)]).unwrap();
    let mut hw = HardwareConfig::tpu_v3_pod(mesh.clone());
    hw.topology = Topology::new([("fast", 600.0e9, 1e-6), ("slow", 25.0e9, 1e-5)]);
    let t = tensor();
    let on = |axis: &str| {
        collective_time(
            &Collective::AllReduce {
                axes: vec![axis.into()],
                reduce: ReduceOp::Sum,
            },
            &t,
            &t,
            &hw,
        )
        .unwrap()
        .0
    };
    assert!(on("fast") * 5.0 < on("slow"));
}

#[test]
fn bigger_axes_cost_more_per_all_reduce() {
    let mesh = Mesh::new([("two", 2), ("eight", 8)]).unwrap();
    let hw = HardwareConfig::tpu_v3_pod(mesh);
    let t = tensor();
    let on = |axis: &str| {
        collective_time(
            &Collective::AllReduce {
                axes: vec![axis.into()],
                reduce: ReduceOp::Sum,
            },
            &t,
            &t,
            &hw,
        )
        .unwrap()
        .0
    };
    // Ring all-reduce moves 2(k-1)/k of the data: 8-way is ~1.75/1.0 of
    // 2-way for the same payload.
    let ratio = on("eight") / on("two");
    assert!((1.5..2.0).contains(&ratio), "ratio {ratio}");
}

#[test]
fn gather_of_small_shards_is_cheaper_than_reduce_of_full() {
    // Z3's bet: gathering parameter shards costs ~bytes(param), while
    // all-reducing a full gradient costs ~2×bytes(param).
    let mesh = Mesh::single("b", 8).unwrap();
    let hw = HardwareConfig::tpu_v3_pod(mesh);
    let full = tensor();
    let shard = TensorType::f32([128, 1024]);
    let (gather, _) = collective_time(
        &Collective::AllGather {
            dim_axes: vec![vec!["b".into()], vec![]],
        },
        &shard,
        &full,
        &hw,
    )
    .unwrap();
    let (reduce, _) = collective_time(
        &Collective::AllReduce {
            axes: vec!["b".into()],
            reduce: ReduceOp::Sum,
        },
        &full,
        &full,
        &hw,
    )
    .unwrap();
    assert!(gather < reduce, "gather {gather} vs reduce {reduce}");
    // And roughly half of it.
    let ratio = reduce / gather;
    assert!((1.8..2.3).contains(&ratio), "ratio {ratio}");
}

#[test]
fn all_to_all_is_cheapest_data_exchange() {
    // A2A moves (k-1)/k of the local bytes — cheaper than gather (which
    // produces k× the data) for the same operand.
    let mesh = Mesh::single("b", 8).unwrap();
    let hw = HardwareConfig::tpu_v3_pod(mesh);
    let local = TensorType::f32([128, 1024]);
    let (a2a, _) = collective_time(
        &Collective::AllToAll {
            src_dim: 0,
            dst_dim: 1,
            axes: vec!["b".into()],
        },
        &local,
        &TensorType::f32([1024, 128]),
        &hw,
    )
    .unwrap();
    let (gather, _) = collective_time(
        &Collective::AllGather {
            dim_axes: vec![vec!["b".into()], vec![]],
        },
        &local,
        &TensorType::f32([1024, 1024]),
        &hw,
    )
    .unwrap();
    assert!(a2a < gather, "a2a {a2a} vs gather {gather}");
}

#[test]
fn unknown_axis_is_an_error() {
    let mesh = Mesh::single("b", 2).unwrap();
    let hw = HardwareConfig::tpu_v3_pod(mesh);
    let t = tensor();
    assert!(collective_time(
        &Collective::AllReduce {
            axes: vec!["nope".into()],
            reduce: ReduceOp::Sum
        },
        &t,
        &t,
        &hw
    )
    .is_err());
}
