//! Measured-vs-predicted overlap reconciliation on the model zoo.
//!
//! For each zoo case: compile the overlapped plan, run it traced on the
//! threaded runtime, read the *measured* overlap off the device
//! timelines (work between each collective's `coll.start` and
//! `coll.wait` spans), and reconcile against
//!
//! 1. the plan's own collective windows — must agree **exactly**: the
//!    runtime executes the plan's step list in order, so steps sit
//!    between start and wait on the trace iff the plan put them there;
//! 2. the two-resource event model — must agree within [`TOLERANCE`]:
//!    the model schedules value dependencies while the plan schedules
//!    arena slots, so the model may predict overlap the plan could not
//!    realize (but both derive from the same dependency structure).

use partir_core::Partitioning;
use partir_mesh::{HardwareConfig, Mesh};
use partir_models::schedules::{self, BATCH, MODEL};
use partir_models::{
    gns::GnsConfig, itransformer::ITransformerConfig, mlp::MlpConfig,
    transformer::TransformerConfig, BuiltModel,
};
use partir_obs::{with_track, Collector};
use partir_sched::{partir_jit, Schedule};
use partir_sim::event::{measure_overlap, EventConfig};
use partir_sim::reconcile_overlap;
use partir_spmd::{RuntimeConfig, SpmdProgram};

/// Stated tolerance for event-model vs measured overlap agreement: the
/// sign (overlapped or not) must match on at least this fraction of
/// collectives, aggregated over the zoo.
const TOLERANCE: f64 = 0.35;

fn zoo_cases() -> Vec<(&'static str, BuiltModel, Option<Schedule>)> {
    let mut cases = Vec::new();
    let t = partir_models::transformer::build_train_step(&TransformerConfig::tiny())
        .expect("transformer");
    let (_, s) = &schedules::transformer_table2()[0];
    cases.push(("transformer", t, Some(s.clone())));
    let i = partir_models::itransformer::build_serving(&ITransformerConfig::tiny())
        .expect("itransformer");
    let (_, s) = &schedules::itransformer_table2()[0];
    cases.push(("itransformer", i, Some(s.clone())));
    let g = partir_models::gns::build_train_step(&GnsConfig::tiny()).expect("gns");
    let (_, s) = &schedules::gns_table2()[0];
    cases.push(("gns", g, Some(s.clone())));
    let m = partir_models::mlp::build_train_step(&MlpConfig::small()).expect("mlp");
    cases.push(("mlp", m, None));
    cases
}

fn build_program(
    model: &BuiltModel,
    schedule: Option<&Schedule>,
    hw: &HardwareConfig,
) -> SpmdProgram {
    match schedule {
        Some(s) => partir_jit(&model.func, hw, s).expect("jit").program,
        None => {
            let mut part = Partitioning::new(&model.func, hw.mesh.clone()).expect("state");
            let params = model.func.params().to_vec();
            part.tile(&model.func, params[0], 0, &BATCH.into())
                .expect("tile");
            part.tile(&model.func, params[2], 1, &MODEL.into())
                .expect("tile");
            part.propagate(&model.func);
            partir_spmd::lower(&model.func, &part)
                .expect("lower")
                .fused()
                .expect("fuse")
        }
    }
}

#[test]
fn measured_overlap_reconciles_with_plan_and_event_model() {
    let mesh = Mesh::new([(BATCH, 2), (MODEL, 2)]).expect("mesh");
    let hw = HardwareConfig::tpu_v3_pod(mesh);
    let mut total = 0usize;
    let mut model_agree = 0.0f64;
    let mut cases_with_overlap = 0usize;
    for (name, model, schedule) in zoo_cases() {
        let program = build_program(&model, schedule.as_ref(), &hw);
        let plan = program.compile().expect("compile");
        if plan.num_collectives() == 0 {
            continue;
        }
        let (_, prediction) =
            measure_overlap(program.func(), &hw, &EventConfig::default()).expect("event model");
        let collector = Collector::recording();
        let inputs = partir_models::synthetic_inputs(&model, 7);
        with_track(&collector, "main", || {
            program
                .execute_global_planned(&plan, &inputs, &RuntimeConfig::default())
                .expect("threaded run");
        });
        let trace = collector.snapshot();
        let rec = reconcile_overlap(plan.collective_windows(), &prediction, &trace);
        assert!(
            !rec.per_collective.is_empty(),
            "{name}: no collective spans found on device tracks"
        );
        // The trace must agree exactly with the plan's windows: the
        // runtime executes the plan's reordered step list verbatim.
        assert_eq!(
            rec.plan_agreement(),
            1.0,
            "{name}: measured overlap diverged from plan windows: {:?}",
            rec.per_collective
        );
        if rec.per_collective.iter().any(|c| c.measured()) {
            cases_with_overlap += 1;
        }
        model_agree += rec.model_agreement() * rec.per_collective.len() as f64;
        total += rec.per_collective.len();
    }
    assert!(total > 0, "zoo produced no traced collectives");
    let aggregate = model_agree / total as f64;
    assert!(
        aggregate >= 1.0 - TOLERANCE,
        "event-model overlap agreement {aggregate:.2} below {:.2} over {total} collectives",
        1.0 - TOLERANCE
    );
    assert!(
        cases_with_overlap > 0,
        "no zoo case showed any measured overlap"
    );
}
