//! Per-op FLOP counting.

use partir_ir::{Func, OpId, OpKind, TensorType};

/// Floating point operations performed by one op with the given operand
/// and result types. Elementwise ops count one flop per output element;
/// contractions count multiply-accumulates as two.
pub fn op_flops(kind: &OpKind, operands: &[&TensorType], result: &TensorType) -> f64 {
    match kind {
        OpKind::Dot(dims) => {
            let contract: f64 = dims
                .lhs_contract
                .iter()
                .map(|&d| operands[0].shape.dim(d) as f64)
                .product();
            2.0 * result.shape.num_elements() as f64 * contract
        }
        OpKind::Convolution(_) => {
            let k = &operands[1].shape;
            // per output element: Ci * kh * kw MACs.
            2.0 * result.shape.num_elements() as f64 * (k.dim(1) * k.dim(2) * k.dim(3)) as f64
        }
        OpKind::ConvInputGrad { .. } => {
            let k = &operands[1].shape;
            2.0 * operands[0].shape.num_elements() as f64 * (k.dim(1) * k.dim(2) * k.dim(3)) as f64
        }
        OpKind::ConvFilterGrad { .. } => {
            let g = &operands[1].shape;
            2.0 * result.shape.num_elements() as f64 * (g.dim(0) * g.dim(2) * g.dim(3)) as f64
        }
        OpKind::Reduce { .. } | OpKind::ArgMax { .. } => operands[0].shape.num_elements() as f64,
        OpKind::Unary(_)
        | OpKind::Binary(_)
        | OpKind::Compare(_)
        | OpKind::Select
        | OpKind::Convert(_) => result.shape.num_elements() as f64,
        OpKind::ScatterAdd { .. } => operands[0].shape.num_elements() as f64,
        // Data movement and bookkeeping ops: no flops.
        OpKind::Constant(_)
        | OpKind::Iota { .. }
        | OpKind::Transpose { .. }
        | OpKind::Reshape { .. }
        | OpKind::BroadcastInDim { .. }
        | OpKind::Slice { .. }
        | OpKind::Pad { .. }
        | OpKind::Concatenate { .. }
        | OpKind::DynamicSlice { .. }
        | OpKind::DynamicUpdateSlice
        | OpKind::Gather { .. }
        | OpKind::For { .. }
        | OpKind::Collective(_) => 0.0,
    }
}

/// Total flops of a function, multiplying through `for` trip counts.
/// On an unpartitioned function this is the paper's "model FLOPs"
/// (Appendix A.1); on a device-local program it is per-device flops.
pub fn func_flops(func: &Func) -> f64 {
    fn body_flops(func: &Func, body: &[OpId]) -> f64 {
        let mut total = 0.0;
        for &op_id in body {
            let op = func.op(op_id);
            if let (OpKind::For { trip_count }, Some(region)) = (&op.kind, &op.region) {
                total += *trip_count as f64 * body_flops(func, &region.body);
                continue;
            }
            let operand_tys: Vec<&TensorType> =
                op.operands.iter().map(|&v| func.value_type(v)).collect();
            total += op_flops(&op.kind, &operand_tys, func.value_type(op.results[0]));
        }
        total
    }
    body_flops(func, func.body())
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::FuncBuilder;

    #[test]
    fn matmul_flops_are_2mnk() {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([4, 8]));
        let w = b.param("w", TensorType::f32([8, 16]));
        let y = b.matmul(x, w).unwrap();
        let f = b.build([y]).unwrap();
        assert_eq!(func_flops(&f), 2.0 * 4.0 * 8.0 * 16.0);
    }

    #[test]
    fn loops_multiply_flops() {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([4, 4]));
        let out = b
            .for_loop(5, &[x], |b, _i, c| Ok(vec![b.matmul(c[0], c[0])?]))
            .unwrap();
        let f = b.build(out).unwrap();
        assert_eq!(func_flops(&f), 5.0 * 2.0 * 4.0 * 4.0 * 4.0);
    }

    #[test]
    fn elementwise_counts_output_elements() {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([10]));
        let y = b.add(x, x).unwrap();
        let z = b.exp(y).unwrap();
        let f = b.build([z]).unwrap();
        assert_eq!(func_flops(&f), 20.0);
    }
}
