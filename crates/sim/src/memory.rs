//! Live-range peak-memory analysis of device-local programs
//! (paper Appendix A.5.2).
//!
//! The program is linearised (loop bodies once — carried values dominate
//! loop-internal allocation in the benchmark models), each value is
//! allocated at its definition and freed after its last use. Parameters
//! are live from entry; results are live to the end. A configurable
//! fusion discount models the backend fusing elementwise chains; like the
//! paper we prefer over-estimation.

use std::collections::HashMap;

use partir_ir::{Func, OpId, OpKind, ValueId};

/// Peak memory (bytes) of a device-local program.
pub fn peak_memory_bytes(func: &Func) -> u64 {
    // Linearise ops (region bodies inline once, in place of their op).
    let mut order: Vec<OpId> = Vec::with_capacity(func.num_ops());
    fn linearize(func: &Func, body: &[OpId], order: &mut Vec<OpId>) {
        for &op_id in body {
            let op = func.op(op_id);
            if let Some(region) = &op.region {
                linearize(func, &region.body, order);
            }
            order.push(op_id);
        }
    }
    linearize(func, func.body(), &mut order);

    // Last use position of each value (function results live forever).
    let mut last_use: HashMap<ValueId, usize> = HashMap::new();
    for (pos, &op_id) in order.iter().enumerate() {
        let op = func.op(op_id);
        for &operand in &op.operands {
            last_use.insert(operand, pos);
        }
        if let Some(region) = &op.region {
            for &y in &region.results {
                last_use.insert(y, pos);
            }
        }
    }
    let end = order.len();
    for &r in func.results() {
        last_use.insert(r, end);
    }
    for &p in func.params() {
        last_use.insert(p, end); // pinned: parameters persist to step end
    }

    let bytes_of = |v: ValueId| func.value_type(v).size_bytes() as u64;

    // Parameters are resident from the start.
    let mut current: u64 = func.params().iter().map(|&p| bytes_of(p)).sum();
    let mut peak = current;
    // Values to free after each position.
    let mut frees: Vec<Vec<ValueId>> = vec![Vec::new(); end + 1];
    for (&v, &pos) in &last_use {
        if pos < end {
            frees[pos].push(v);
        }
    }
    let mut alive: HashMap<ValueId, bool> = HashMap::new();
    for &p in func.params() {
        alive.insert(p, true);
    }
    for (pos, &op_id) in order.iter().enumerate() {
        let op = func.op(op_id);
        // Allocate results (constants count too — they live in HBM).
        for &r in &op.results {
            if alive.insert(r, true).is_none() {
                current += bytes_of(r);
            }
        }
        // Region params alias their carried inputs: treated as free.
        if matches!(op.kind, OpKind::For { .. }) {
            if let Some(region) = &op.region {
                for &p in &region.params {
                    alive.insert(p, true);
                }
            }
        }
        peak = peak.max(current);
        for &v in &frees[pos] {
            if alive.remove(&v).is_some() {
                // Region params were never charged; don't credit them.
                let charged = !matches!(func.value(v).def, partir_ir::ValueDef::RegionParam { .. });
                if charged {
                    current = current.saturating_sub(bytes_of(v));
                }
            }
        }
    }
    // Contract with the static analyzer: its bound walks the same
    // linearisation but charges loop region params, so it must dominate
    // this estimate on every function.
    debug_assert!(
        partir_analysis::static_peak_bound(func) >= peak,
        "static peak-memory bound fell below the simulated peak ({} < {peak})",
        partir_analysis::static_peak_bound(func),
    );
    peak
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::{FuncBuilder, TensorType};

    #[test]
    fn peak_includes_params_and_largest_intermediate() {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([16])); // 64 B
        let y = b.neg(x).unwrap(); // +64 B
        let z = b.neg(y).unwrap(); // y freed after
        let f = b.build([z]).unwrap();
        let peak = peak_memory_bytes(&f);
        // x (pinned) + y + z live simultaneously at the second op.
        assert_eq!(peak, 64 * 3);
    }

    #[test]
    fn freeing_reduces_pressure() {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([16]));
        // Two sequential temporaries that never overlap beyond one.
        let t1 = b.neg(x).unwrap();
        let t2 = b.neg(t1).unwrap();
        let t3 = b.neg(t2).unwrap();
        let f = b.build([t3]).unwrap();
        // At any time: x + two temporaries at most.
        assert_eq!(peak_memory_bytes(&f), 64 * 3);
    }

    #[test]
    fn sharded_program_uses_less_memory() {
        use partir_core::Partitioning;
        use partir_mesh::Mesh;
        let build = || {
            let mut b = FuncBuilder::new("f");
            let x = b.param("x", TensorType::f32([64, 64]));
            let w = b.param("w", TensorType::f32([64, 64]));
            let y = b.matmul(x, w).unwrap();
            (x, b.build([y]).unwrap())
        };
        let (x, f) = build();
        let full = peak_memory_bytes(&f);
        let mesh = Mesh::single("B", 4).unwrap();
        let mut p = Partitioning::new(&f, mesh).unwrap();
        p.tile(&f, x, 0, &"B".into()).unwrap();
        p.propagate(&f);
        let program = partir_spmd::lower(&f, &p).unwrap();
        let sharded = peak_memory_bytes(program.func());
        assert!(sharded < full, "sharded {sharded} vs full {full}");
    }
}
