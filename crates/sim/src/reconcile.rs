//! Predicted-vs-executed traffic reconciliation.
//!
//! The threaded runtime ([`partir_spmd::ThreadedRuntime`]) counts every
//! byte it actually moves into [`RuntimeStats`]. Two independent models
//! predict that traffic:
//!
//! 1. the exact mirror [`partir_spmd::predict_traffic`], which walks the
//!    program and replays the collective algorithms' chunking — it must
//!    agree *exactly*, per axis, in both bytes and message counts;
//! 2. the analytical cost model ([`crate::Simulator`]), whose per-device
//!    `comm_bytes` times the device count must agree up to floating
//!    point (its ring formulas `2(k-1)/k·n`, `(k-1)/k·n`, … are the
//!    real-valued forms of what the runtime moves), except for the
//!    multi-axis all-to-all fallback where the executed algorithm is the
//!    unfused gather+slice composition.
//!
//! [`reconcile`] packages both comparisons; conformance and property
//! tests assert [`Reconciliation::is_exact`] and inspect
//! [`Reconciliation::analytic_relative_error`].
//!
//! The runtime executes compiled plans (`partir_spmd::CompiledPlan`)
//! whose collective schedules — rendezvous partners and per-axis byte
//! counts — are baked at plan-compile time. Reconciliation is therefore
//! also a check on that ahead-of-time wiring: the bytes a plan's baked
//! schedule actually moves must still match the mirror exactly.
//!
//! [`RuntimeStats`]: partir_spmd::RuntimeStats

use std::collections::BTreeSet;

use partir_ir::IrError;
use partir_mesh::{Axis, HardwareConfig};
use partir_obs::Trace;
use partir_spmd::{CollWindow, RuntimeStats, SpmdProgram, TrafficPrediction};

use crate::event::OverlapPrediction;
use crate::{SimConfig, Simulator};

/// Predicted vs executed traffic on one mesh axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisCheck {
    /// The mesh axis.
    pub axis: Axis,
    /// Bytes the mirror predicted.
    pub predicted_bytes: u64,
    /// Bytes the runtime moved.
    pub executed_bytes: u64,
    /// Messages the mirror predicted.
    pub predicted_messages: u64,
    /// Messages the runtime sent.
    pub executed_messages: u64,
}

impl AxisCheck {
    /// Whether prediction and execution agree exactly on this axis.
    pub fn is_exact(&self) -> bool {
        self.predicted_bytes == self.executed_bytes
            && self.predicted_messages == self.executed_messages
    }
}

/// Result of cross-checking one execution against both predictors.
#[derive(Debug, Clone)]
pub struct Reconciliation {
    /// Per-axis mirror comparison (union of predicted and executed axes).
    pub per_axis: Vec<AxisCheck>,
    /// The analytical model's per-device communication bytes.
    pub analytic_bytes_per_device: f64,
    /// Total bytes the runtime moved, summed over devices.
    pub executed_total_bytes: u64,
    /// Devices in the mesh.
    pub num_devices: usize,
}

impl Reconciliation {
    /// Whether executed traffic equals the mirror prediction exactly on
    /// every axis (bytes and messages).
    pub fn is_exact(&self) -> bool {
        self.per_axis.iter().all(AxisCheck::is_exact)
    }

    /// Relative disagreement between executed total bytes and the
    /// analytical model's total (`comm_bytes × num_devices`).
    ///
    /// Zero (up to f64 rounding) for every fused collective; the
    /// multi-axis all-to-all fallback legitimately exceeds the analytic
    /// figure because it executes the unfused gather+slice composition.
    pub fn analytic_relative_error(&self) -> f64 {
        let analytic = self.analytic_bytes_per_device * self.num_devices as f64;
        let executed = self.executed_total_bytes as f64;
        (executed - analytic).abs() / analytic.max(1.0)
    }
}

/// Cross-checks an execution's [`RuntimeStats`] against the exact mirror
/// prediction and the analytical cost model.
///
/// # Errors
///
/// Fails if the program is malformed (prediction or simulation walks
/// reject it).
pub fn reconcile(
    program: &SpmdProgram,
    hw: &HardwareConfig,
    stats: &RuntimeStats,
) -> Result<Reconciliation, IrError> {
    let predicted: TrafficPrediction = program.predicted_traffic()?;
    let report = Simulator::new(hw, SimConfig::default()).simulate(program.func())?;
    let axes: BTreeSet<Axis> = predicted
        .per_axis
        .keys()
        .chain(stats.per_axis.keys())
        .cloned()
        .collect();
    let per_axis = axes
        .into_iter()
        .map(|axis| {
            let p = predicted.per_axis.get(&axis).copied().unwrap_or_default();
            let e = stats.per_axis.get(&axis).copied().unwrap_or_default();
            AxisCheck {
                axis,
                predicted_bytes: p.bytes,
                executed_bytes: e.bytes,
                predicted_messages: p.messages,
                executed_messages: e.messages,
            }
        })
        .collect();
    Ok(Reconciliation {
        per_axis,
        analytic_bytes_per_device: report.comm_bytes,
        executed_total_bytes: stats.total_bytes(),
        num_devices: program.mesh().num_devices(),
    })
}

/// Measured-vs-predicted overlap of one collective, across all device
/// tracks of one traced execution.
///
/// *Measured* overlap is structural, read off the real device timelines:
/// a collective overlapped iff other plan steps ran between its
/// `coll.start.<tag>` span and its `coll.wait.<tag>` span. This is
/// clock-free — adjacent spans always have a few nanoseconds between
/// them, so the wall-clock gap alone cannot distinguish "the runtime
/// did compute under this collective" from span-transition cost.
#[derive(Debug, Clone, PartialEq)]
pub struct OverlapCheck {
    /// Rendezvous tag (static collective index, plan/tag order).
    pub tag: u32,
    /// Steps between start and wait in the compiled plan (per
    /// [`CollWindow`]); >0 means the compiler found slack to hoist into.
    pub planned_gap_steps: usize,
    /// Seconds the two-resource event model predicts this collective
    /// hides under compute.
    pub predicted_hidden_s: f64,
    /// The event model's total duration for this collective.
    pub predicted_duration_s: f64,
    /// Start/wait span pairs found on device tracks (devices ×
    /// iterations).
    pub measured_pairs: usize,
    /// Spans of other steps that ran strictly inside this collective's
    /// start→wait windows, totalled over all pairs.
    pub intervening_steps: usize,
    /// Total wall-clock start→wait gap over all pairs, nanoseconds.
    pub measured_window_ns: u64,
}

impl OverlapCheck {
    /// Whether the compiled plan scheduled this collective with a window.
    pub fn planned(&self) -> bool {
        self.planned_gap_steps > 0
    }

    /// Whether the event model predicts any of it hides under compute.
    pub fn predicted(&self) -> bool {
        self.predicted_hidden_s > 1e-12
    }

    /// Whether the device traces show real work inside the window.
    pub fn measured(&self) -> bool {
        self.intervening_steps > 0
    }
}

/// Result of cross-checking measured overlap (device-trace span gaps)
/// against the plan's windows and the event model's prediction.
#[derive(Debug, Clone)]
pub struct OverlapReconciliation {
    /// Per collective, in tag order. Only collectives whose spans appear
    /// on at least one device track are listed.
    pub per_collective: Vec<OverlapCheck>,
}

impl OverlapReconciliation {
    /// Fraction of traced collectives where the runtime's measured
    /// overlap agrees with the plan's window (both present or both
    /// absent). The plan and the runtime share the step list, so this
    /// should be 1.0; chaos perturbation cannot change it.
    pub fn plan_agreement(&self) -> f64 {
        self.agreement(|c| c.planned())
    }

    /// Fraction of traced collectives where the two-resource event
    /// model's prediction agrees with the measurement. The model
    /// schedules value dependencies while the plan schedules arena
    /// slots, so small disagreement is expected — conformance asserts
    /// this stays above `1 - tolerance`.
    pub fn model_agreement(&self) -> f64 {
        self.agreement(|c| c.predicted())
    }

    /// Whether both agreements hold within `tolerance` (the stated
    /// tolerance of the overlap conformance battery).
    pub fn within_tolerance(&self, tolerance: f64) -> bool {
        self.plan_agreement() >= 1.0 - tolerance && self.model_agreement() >= 1.0 - tolerance
    }

    fn agreement(&self, f: impl Fn(&OverlapCheck) -> bool) -> f64 {
        if self.per_collective.is_empty() {
            return 1.0;
        }
        let agree = self
            .per_collective
            .iter()
            .filter(|c| f(c) == c.measured())
            .count();
        agree as f64 / self.per_collective.len() as f64
    }
}

/// Cross-checks one traced execution's *measured* overlap against the
/// compiled plan's collective windows and the two-resource event model.
///
/// `windows` comes from `CompiledPlan::collective_windows()`,
/// `prediction` from [`crate::event::measure_overlap`], and `trace` from
/// the obs collector that recorded the run (device tracks `device0`,
/// `device1`, …).
pub fn reconcile_overlap(
    windows: &[CollWindow],
    prediction: &OverlapPrediction,
    trace: &Trace,
) -> OverlapReconciliation {
    let per_collective = windows
        .iter()
        .map(|w| {
            let start_name = format!("coll.start.{}", w.tag);
            let wait_name = format!("coll.wait.{}", w.tag);
            let mut measured_pairs = 0;
            let mut intervening_steps = 0;
            let mut measured_window_ns = 0u64;
            for track in trace.tracks.iter().filter(|t| t.name.starts_with("device")) {
                let starts: Vec<_> = track
                    .spans
                    .iter()
                    .filter(|s| s.name == start_name.as_str())
                    .collect();
                let waits: Vec<_> = track
                    .spans
                    .iter()
                    .filter(|s| s.name == wait_name.as_str())
                    .collect();
                for (s, t) in starts.iter().zip(&waits) {
                    measured_pairs += 1;
                    measured_window_ns += t.start_ns.saturating_sub(s.end_ns);
                    if t.start_ns > s.end_ns {
                        intervening_steps += track
                            .spans
                            .iter()
                            .filter(|o| {
                                o.depth == s.depth
                                    && o.start_ns >= s.end_ns
                                    && o.end_ns <= t.start_ns
                            })
                            .count();
                    }
                }
            }
            let pred = prediction.collectives.iter().find(|c| c.index == w.tag);
            OverlapCheck {
                tag: w.tag,
                planned_gap_steps: w.gap_steps,
                predicted_hidden_s: pred.map_or(0.0, |c| c.hidden_s),
                predicted_duration_s: pred.map_or(0.0, |c| c.duration_s),
                measured_pairs,
                intervening_steps,
                measured_window_ns,
            }
        })
        .filter(|c| c.measured_pairs > 0)
        .collect();
    OverlapReconciliation { per_collective }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_core::Partitioning;
    use partir_ir::{FuncBuilder, Literal, TensorType};
    use partir_mesh::Mesh;
    use partir_spmd::RuntimeConfig;

    /// A batch-tiled matmul chain whose contraction forces an all_reduce.
    fn contracting_program(mesh: Mesh) -> SpmdProgram {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([8, 16]));
        let w = b.param("w", TensorType::f32([16, 4]));
        let y = b.matmul(x, w).unwrap();
        let f = b.build([y]).unwrap();
        let mut part = Partitioning::new(&f, mesh).unwrap();
        // Tile the contracting dimension: the matmul becomes a partial
        // sum finished by an all_reduce.
        part.tile(&f, x, 1, &"M".into()).unwrap();
        part.tile(&f, w, 0, &"M".into()).unwrap();
        part.propagate(&f);
        partir_spmd::lower(&f, &part).unwrap()
    }

    #[test]
    fn executed_traffic_reconciles_with_both_models() {
        let mesh = Mesh::new([("B", 2), ("M", 2)]).unwrap();
        let program = contracting_program(mesh.clone());
        assert!(program.stats().all_reduce > 0, "schedule must communicate");
        let inputs = [
            Literal::from_f32((0..128).map(|v| v as f32 * 0.01).collect(), [8, 16]).unwrap(),
            Literal::from_f32((0..64).map(|v| v as f32 * 0.02 - 0.5).collect(), [16, 4]).unwrap(),
        ];
        let (_, stats) = program
            .execute_global_threaded(&inputs, &RuntimeConfig::default())
            .unwrap();
        let hw = HardwareConfig::tpu_v3_pod(mesh);
        let rec = reconcile(&program, &hw, &stats).unwrap();
        assert!(rec.is_exact(), "mirror mismatch: {:?}", rec.per_axis);
        assert!(rec.executed_total_bytes > 0);
        assert!(
            rec.analytic_relative_error() < 1e-9,
            "analytic error {} (analytic {} executed {})",
            rec.analytic_relative_error(),
            rec.analytic_bytes_per_device * rec.num_devices as f64,
            rec.executed_total_bytes,
        );
    }

    #[test]
    fn mismatched_stats_are_flagged() {
        let mesh = Mesh::new([("B", 2), ("M", 2)]).unwrap();
        let program = contracting_program(mesh.clone());
        let hw = HardwareConfig::tpu_v3_pod(mesh);
        // Empty stats against a communicating program: inconsistent.
        let rec = reconcile(&program, &hw, &RuntimeStats::default()).unwrap();
        assert!(!rec.is_exact());
    }
}
