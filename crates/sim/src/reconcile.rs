//! Predicted-vs-executed traffic reconciliation.
//!
//! The threaded runtime ([`partir_spmd::ThreadedRuntime`]) counts every
//! byte it actually moves into [`RuntimeStats`]. Two independent models
//! predict that traffic:
//!
//! 1. the exact mirror [`partir_spmd::predict_traffic`], which walks the
//!    program and replays the collective algorithms' chunking — it must
//!    agree *exactly*, per axis, in both bytes and message counts;
//! 2. the analytical cost model ([`crate::Simulator`]), whose per-device
//!    `comm_bytes` times the device count must agree up to floating
//!    point (its ring formulas `2(k-1)/k·n`, `(k-1)/k·n`, … are the
//!    real-valued forms of what the runtime moves), except for the
//!    multi-axis all-to-all fallback where the executed algorithm is the
//!    unfused gather+slice composition.
//!
//! [`reconcile`] packages both comparisons; conformance and property
//! tests assert [`Reconciliation::is_exact`] and inspect
//! [`Reconciliation::analytic_relative_error`].
//!
//! The runtime executes compiled plans (`partir_spmd::CompiledPlan`)
//! whose collective schedules — rendezvous partners and per-axis byte
//! counts — are baked at plan-compile time. Reconciliation is therefore
//! also a check on that ahead-of-time wiring: the bytes a plan's baked
//! schedule actually moves must still match the mirror exactly.
//!
//! [`RuntimeStats`]: partir_spmd::RuntimeStats

use std::collections::BTreeSet;

use partir_ir::IrError;
use partir_mesh::{Axis, HardwareConfig};
use partir_spmd::{RuntimeStats, SpmdProgram, TrafficPrediction};

use crate::{SimConfig, Simulator};

/// Predicted vs executed traffic on one mesh axis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AxisCheck {
    /// The mesh axis.
    pub axis: Axis,
    /// Bytes the mirror predicted.
    pub predicted_bytes: u64,
    /// Bytes the runtime moved.
    pub executed_bytes: u64,
    /// Messages the mirror predicted.
    pub predicted_messages: u64,
    /// Messages the runtime sent.
    pub executed_messages: u64,
}

impl AxisCheck {
    /// Whether prediction and execution agree exactly on this axis.
    pub fn is_exact(&self) -> bool {
        self.predicted_bytes == self.executed_bytes
            && self.predicted_messages == self.executed_messages
    }
}

/// Result of cross-checking one execution against both predictors.
#[derive(Debug, Clone)]
pub struct Reconciliation {
    /// Per-axis mirror comparison (union of predicted and executed axes).
    pub per_axis: Vec<AxisCheck>,
    /// The analytical model's per-device communication bytes.
    pub analytic_bytes_per_device: f64,
    /// Total bytes the runtime moved, summed over devices.
    pub executed_total_bytes: u64,
    /// Devices in the mesh.
    pub num_devices: usize,
}

impl Reconciliation {
    /// Whether executed traffic equals the mirror prediction exactly on
    /// every axis (bytes and messages).
    pub fn is_exact(&self) -> bool {
        self.per_axis.iter().all(AxisCheck::is_exact)
    }

    /// Relative disagreement between executed total bytes and the
    /// analytical model's total (`comm_bytes × num_devices`).
    ///
    /// Zero (up to f64 rounding) for every fused collective; the
    /// multi-axis all-to-all fallback legitimately exceeds the analytic
    /// figure because it executes the unfused gather+slice composition.
    pub fn analytic_relative_error(&self) -> f64 {
        let analytic = self.analytic_bytes_per_device * self.num_devices as f64;
        let executed = self.executed_total_bytes as f64;
        (executed - analytic).abs() / analytic.max(1.0)
    }
}

/// Cross-checks an execution's [`RuntimeStats`] against the exact mirror
/// prediction and the analytical cost model.
///
/// # Errors
///
/// Fails if the program is malformed (prediction or simulation walks
/// reject it).
pub fn reconcile(
    program: &SpmdProgram,
    hw: &HardwareConfig,
    stats: &RuntimeStats,
) -> Result<Reconciliation, IrError> {
    let predicted: TrafficPrediction = program.predicted_traffic()?;
    let report = Simulator::new(hw, SimConfig::default()).simulate(program.func())?;
    let axes: BTreeSet<Axis> = predicted
        .per_axis
        .keys()
        .chain(stats.per_axis.keys())
        .cloned()
        .collect();
    let per_axis = axes
        .into_iter()
        .map(|axis| {
            let p = predicted.per_axis.get(&axis).copied().unwrap_or_default();
            let e = stats.per_axis.get(&axis).copied().unwrap_or_default();
            AxisCheck {
                axis,
                predicted_bytes: p.bytes,
                executed_bytes: e.bytes,
                predicted_messages: p.messages,
                executed_messages: e.messages,
            }
        })
        .collect();
    Ok(Reconciliation {
        per_axis,
        analytic_bytes_per_device: report.comm_bytes,
        executed_total_bytes: stats.total_bytes(),
        num_devices: program.mesh().num_devices(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_core::Partitioning;
    use partir_ir::{FuncBuilder, Literal, TensorType};
    use partir_mesh::Mesh;
    use partir_spmd::RuntimeConfig;

    /// A batch-tiled matmul chain whose contraction forces an all_reduce.
    fn contracting_program(mesh: Mesh) -> SpmdProgram {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([8, 16]));
        let w = b.param("w", TensorType::f32([16, 4]));
        let y = b.matmul(x, w).unwrap();
        let f = b.build([y]).unwrap();
        let mut part = Partitioning::new(&f, mesh).unwrap();
        // Tile the contracting dimension: the matmul becomes a partial
        // sum finished by an all_reduce.
        part.tile(&f, x, 1, &"M".into()).unwrap();
        part.tile(&f, w, 0, &"M".into()).unwrap();
        part.propagate(&f);
        partir_spmd::lower(&f, &part).unwrap()
    }

    #[test]
    fn executed_traffic_reconciles_with_both_models() {
        let mesh = Mesh::new([("B", 2), ("M", 2)]).unwrap();
        let program = contracting_program(mesh.clone());
        assert!(program.stats().all_reduce > 0, "schedule must communicate");
        let inputs = [
            Literal::from_f32((0..128).map(|v| v as f32 * 0.01).collect(), [8, 16]).unwrap(),
            Literal::from_f32((0..64).map(|v| v as f32 * 0.02 - 0.5).collect(), [16, 4]).unwrap(),
        ];
        let (_, stats) = program
            .execute_global_threaded(&inputs, &RuntimeConfig::default())
            .unwrap();
        let hw = HardwareConfig::tpu_v3_pod(mesh);
        let rec = reconcile(&program, &hw, &stats).unwrap();
        assert!(rec.is_exact(), "mirror mismatch: {:?}", rec.per_axis);
        assert!(rec.executed_total_bytes > 0);
        assert!(
            rec.analytic_relative_error() < 1e-9,
            "analytic error {} (analytic {} executed {})",
            rec.analytic_relative_error(),
            rec.analytic_bytes_per_device * rec.num_devices as f64,
            rec.executed_total_bytes,
        );
    }

    #[test]
    fn mismatched_stats_are_flagged() {
        let mesh = Mesh::new([("B", 2), ("M", 2)]).unwrap();
        let program = contracting_program(mesh.clone());
        let hw = HardwareConfig::tpu_v3_pod(mesh);
        // Empty stats against a communicating program: inconsistent.
        let rec = reconcile(&program, &hw, &RuntimeStats::default()).unwrap();
        assert!(!rec.is_exact());
    }
}
