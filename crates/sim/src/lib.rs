//! Analytical simulator for SPMD programs (paper §3, Appendix A.5).
//!
//! PartIR:HLO programs carry tensor shapes and mesh-axis collectives, so a
//! simple walk suffices: per-op FLOP counting against device peak FLOPS,
//! ring-style cost models for collectives against per-axis link bandwidth,
//! and a live-range analysis for peak device memory. As the paper notes,
//! absolute values are not guaranteed — the simulator exists to make
//! *relative* improvements predictable for users and automatic tactics,
//! and to reject partitions that exceed device memory.
//!
//! The [`event`] module is a second, event-level execution model with
//! per-op dispatch overheads and imperfect compute/communication overlap.
//! In this reproduction it stands in for real-hardware measurements when
//! regenerating Figures 9 and 10 (see DESIGN.md substitutions).
//!
//! # Examples
//!
//! ```
//! use partir_core::Partitioning;
//! use partir_ir::{FuncBuilder, TensorType};
//! use partir_mesh::{HardwareConfig, Mesh};
//! use partir_sim::{Simulator, SimConfig};
//!
//! let mut b = FuncBuilder::new("main");
//! let x = b.param("x", TensorType::f32([256, 64]));
//! let w = b.param("w", TensorType::f32([64, 64]));
//! let y = b.matmul(x, w)?;
//! let f = b.build([y])?;
//! let mesh = Mesh::single("B", 4).unwrap();
//! let mut part = Partitioning::new(&f, mesh.clone())?;
//! part.tile(&f, x, 0, &"B".into())?;
//! part.propagate(&f);
//! let program = partir_spmd::lower(&f, &part)?;
//!
//! let hw = HardwareConfig::tpu_v3_pod(mesh);
//! let report = Simulator::new(&hw, SimConfig::default()).simulate(program.func())?;
//! assert!(report.runtime_s > 0.0);
//! assert!(report.peak_memory_bytes > 0);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![forbid(unsafe_code)]

mod cost;
mod evaluate;
pub mod event;
mod flops;
mod memory;
pub mod reconcile;

pub use cost::{collective_time, SimConfig, Simulator};
pub use evaluate::{evaluate, evaluate_with, CostBreakdown, Evaluation};
pub use flops::{func_flops, op_flops};
pub use memory::peak_memory_bytes;
pub use reconcile::{
    reconcile, reconcile_overlap, AxisCheck, OverlapCheck, OverlapReconciliation, Reconciliation,
};

/// Simulation results for one device-local program.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SimReport {
    /// Estimated wall-clock per step, seconds.
    pub runtime_s: f64,
    /// Pure compute portion, seconds.
    pub compute_s: f64,
    /// Pure communication portion, seconds.
    pub comm_s: f64,
    /// Device-local floating point operations per step.
    pub flops: f64,
    /// Bytes moved by collectives per step (per device).
    pub comm_bytes: f64,
    /// Peak device memory, bytes.
    pub peak_memory_bytes: u64,
}

impl SimReport {
    /// Model FLOPS utilisation given the *model's* (unpartitioned) flops
    /// and the machine (Appendix A.1).
    pub fn mfu(&self, model_flops: f64, num_devices: usize, peak_flops: f64) -> f64 {
        if self.runtime_s == 0.0 {
            return 0.0;
        }
        100.0 * (model_flops / self.runtime_s) / (num_devices as f64 * peak_flops)
    }
}
