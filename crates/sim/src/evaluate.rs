//! The single evaluation entry point of the pipeline: lower a
//! partitioning to its device-local program, fuse collectives, and
//! simulate the result.
//!
//! Search tactics (`partir-sched`) and benchmarks previously each glued
//! `partir_spmd::lower` + `fused` + [`Simulator::simulate`] together by
//! hand; [`evaluate`] is now the one place that composition lives, and
//! the unit whose results the search's evaluation cache memoises (keyed
//! by [`partir_core::Partitioning::fingerprint`]).

use partir_core::Partitioning;
use partir_ir::{Func, IrError};
use partir_mesh::HardwareConfig;
use partir_spmd::CollectiveStats;

use crate::{SimConfig, SimReport, Simulator};

/// Everything the pipeline knows about one partitioning of one function
/// on one machine: the simulator's estimates plus the collective mix of
/// the fused program.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Evaluation {
    /// Simulated runtime/compute/comm/memory of the device-local program.
    pub sim: SimReport,
    /// Collective counts of the fused program.
    pub stats: CollectiveStats,
}

impl Evaluation {
    /// The scalar objective searches minimise: estimated runtime with a
    /// multiplicative penalty once peak memory exceeds device HBM (the
    /// paper's "penalizes models that exceed device memory limits").
    pub fn cost(&self, hw: &HardwareConfig) -> f64 {
        let mem = self.sim.peak_memory_bytes as f64;
        let cap = hw.device.hbm_bytes as f64;
        let penalty = if mem > cap { 10.0 * (mem / cap) } else { 1.0 };
        self.sim.runtime_s * penalty
    }
}

/// Lowers `func` under `part`, fuses collectives, and simulates the
/// device-local program on `hw` with the default [`SimConfig`].
///
/// # Errors
///
/// Fails if lowering or simulation fails — both indicate a bug (an
/// inconsistent partitioning or unsupported op), not a merely bad
/// partitioning.
pub fn evaluate(
    func: &Func,
    part: &Partitioning,
    hw: &HardwareConfig,
) -> Result<Evaluation, IrError> {
    evaluate_with(func, part, hw, SimConfig::default())
}

/// [`evaluate`] with an explicit simulator configuration.
///
/// # Errors
///
/// Same failure modes as [`evaluate`].
pub fn evaluate_with(
    func: &Func,
    part: &Partitioning,
    hw: &HardwareConfig,
    config: SimConfig,
) -> Result<Evaluation, IrError> {
    let _span = partir_obs::span!("sim.evaluate");
    let program = partir_spmd::lower(func, part)?.fused()?;
    let stats = program.stats();
    let sim = Simulator::new(hw, config).simulate(program.func())?;
    // Cost-component breakdown: where the simulated runtime comes from
    // (seconds), plus the memory/traffic drivers behind it.
    partir_obs::counter!("sim.compute_s", sim.compute_s);
    partir_obs::counter!("sim.comm_s", sim.comm_s);
    partir_obs::counter!("sim.runtime_s", sim.runtime_s);
    partir_obs::counter!("sim.comm_bytes", sim.comm_bytes);
    partir_obs::counter!("sim.peak_memory_bytes", sim.peak_memory_bytes);
    Ok(Evaluation { sim, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::{FuncBuilder, TensorType};
    use partir_mesh::Mesh;

    fn matmul() -> (Func, partir_ir::ValueId) {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([256, 64]));
        let w = b.param("w", TensorType::f32([64, 64]));
        let y = b.matmul(x, w).unwrap();
        (b.build([y]).unwrap(), x)
    }

    #[test]
    fn evaluate_matches_manual_composition() {
        let (f, x) = matmul();
        let mesh = Mesh::single("B", 4).unwrap();
        let hw = HardwareConfig::tpu_v3_pod(mesh.clone());
        let mut p = Partitioning::new(&f, mesh).unwrap();
        p.tile(&f, x, 0, &"B".into()).unwrap();
        p.propagate(&f);

        let eval = evaluate(&f, &p, &hw).unwrap();
        let program = partir_spmd::lower(&f, &p).unwrap().fused().unwrap();
        let report = Simulator::new(&hw, SimConfig::default())
            .simulate(program.func())
            .unwrap();
        assert_eq!(eval.sim, report);
        assert_eq!(eval.stats, program.stats());
        // Pure data parallelism over one matmul needs no collectives.
        assert_eq!(eval.stats.total(), 0);
    }

    #[test]
    fn cost_penalises_out_of_memory() {
        let (f, _) = matmul();
        let mesh = Mesh::single("B", 4).unwrap();
        let hw = HardwareConfig::tpu_v3_pod(mesh.clone());
        let p = Partitioning::new(&f, mesh).unwrap();
        let eval = evaluate(&f, &p, &hw).unwrap();
        assert!(eval.cost(&hw) > 0.0);

        let mut tiny = hw.clone();
        tiny.device.hbm_bytes = 1;
        assert!(eval.cost(&tiny) > 10.0 * eval.cost(&hw));
    }
}
