//! The single evaluation entry point of the pipeline: lower a
//! partitioning to its device-local program, fuse collectives, and
//! simulate the result.
//!
//! Search tactics (`partir-sched`) and benchmarks previously each glued
//! `partir_spmd::lower` + `fused` + [`Simulator::simulate`] together by
//! hand; [`evaluate`] is now the one place that composition lives, and
//! the unit whose results the search's evaluation cache memoises (keyed
//! by [`partir_core::Partitioning::fingerprint`]).

use partir_core::Partitioning;
use partir_ir::{Func, IrError};
use partir_mesh::HardwareConfig;
use partir_spmd::CollectiveStats;

use crate::{SimConfig, SimReport, Simulator};

/// Everything the pipeline knows about one partitioning of one function
/// on one machine: the simulator's estimates plus the collective mix of
/// the fused program.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Evaluation {
    /// Simulated runtime/compute/comm/memory of the device-local program.
    pub sim: SimReport,
    /// Collective counts of the fused program.
    pub stats: CollectiveStats,
}

/// Where an [`Evaluation`]'s scalar cost comes from, component by
/// component — the calibration surface for static objectives
/// (`partir_analysis::objective`) that mirror this cost model without
/// running it: agreement is checked term-wise, not just on the final
/// scalar.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CostBreakdown {
    /// Roofline compute seconds.
    pub compute_s: f64,
    /// Collective communication seconds.
    pub comm_s: f64,
    /// Bytes on the wire per device per step.
    pub comm_bytes: f64,
    /// Simulated peak device memory, bytes.
    pub peak_memory_bytes: u64,
    /// Multiplicative out-of-memory penalty (1.0 when within HBM).
    pub penalty: f64,
    /// The final scalar: `(compute_s + comm_s) * penalty`.
    pub cost: f64,
}

impl Evaluation {
    /// The scalar objective searches minimise: estimated runtime with a
    /// multiplicative penalty once peak memory exceeds device HBM (the
    /// paper's "penalizes models that exceed device memory limits").
    pub fn cost(&self, hw: &HardwareConfig) -> f64 {
        self.cost_breakdown(hw).cost
    }

    /// [`Evaluation::cost`] split into its components.
    pub fn cost_breakdown(&self, hw: &HardwareConfig) -> CostBreakdown {
        let mem = self.sim.peak_memory_bytes as f64;
        let cap = hw.device.hbm_bytes as f64;
        let penalty = if mem > cap { 10.0 * (mem / cap) } else { 1.0 };
        CostBreakdown {
            compute_s: self.sim.compute_s,
            comm_s: self.sim.comm_s,
            comm_bytes: self.sim.comm_bytes,
            peak_memory_bytes: self.sim.peak_memory_bytes,
            penalty,
            cost: self.sim.runtime_s * penalty,
        }
    }
}

/// Lowers `func` under `part`, fuses collectives, and simulates the
/// device-local program on `hw` with the default [`SimConfig`].
///
/// # Errors
///
/// Fails if lowering or simulation fails — both indicate a bug (an
/// inconsistent partitioning or unsupported op), not a merely bad
/// partitioning.
pub fn evaluate(
    func: &Func,
    part: &Partitioning,
    hw: &HardwareConfig,
) -> Result<Evaluation, IrError> {
    evaluate_with(func, part, hw, SimConfig::default())
}

/// [`evaluate`] with an explicit simulator configuration.
///
/// # Errors
///
/// Same failure modes as [`evaluate`].
pub fn evaluate_with(
    func: &Func,
    part: &Partitioning,
    hw: &HardwareConfig,
    config: SimConfig,
) -> Result<Evaluation, IrError> {
    let _span = partir_obs::span!("sim.evaluate");
    let program = partir_spmd::lower(func, part)?.fused()?;
    let stats = program.stats();
    let sim = Simulator::new(hw, config).simulate(program.func())?;
    // Cost-component breakdown: where the simulated runtime comes from
    // (seconds), plus the memory/traffic drivers behind it.
    partir_obs::counter!("sim.compute_s", sim.compute_s);
    partir_obs::counter!("sim.comm_s", sim.comm_s);
    partir_obs::counter!("sim.runtime_s", sim.runtime_s);
    partir_obs::counter!("sim.comm_bytes", sim.comm_bytes);
    partir_obs::counter!("sim.peak_memory_bytes", sim.peak_memory_bytes);
    Ok(Evaluation { sim, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::{FuncBuilder, TensorType};
    use partir_mesh::Mesh;

    fn matmul() -> (Func, partir_ir::ValueId) {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([256, 64]));
        let w = b.param("w", TensorType::f32([64, 64]));
        let y = b.matmul(x, w).unwrap();
        (b.build([y]).unwrap(), x)
    }

    #[test]
    fn evaluate_matches_manual_composition() {
        let (f, x) = matmul();
        let mesh = Mesh::single("B", 4).unwrap();
        let hw = HardwareConfig::tpu_v3_pod(mesh.clone());
        let mut p = Partitioning::new(&f, mesh).unwrap();
        p.tile(&f, x, 0, &"B".into()).unwrap();
        p.propagate(&f);

        let eval = evaluate(&f, &p, &hw).unwrap();
        let program = partir_spmd::lower(&f, &p).unwrap().fused().unwrap();
        let report = Simulator::new(&hw, SimConfig::default())
            .simulate(program.func())
            .unwrap();
        assert_eq!(eval.sim, report);
        assert_eq!(eval.stats, program.stats());
        // Pure data parallelism over one matmul needs no collectives.
        assert_eq!(eval.stats.total(), 0);
    }

    #[test]
    fn cost_breakdown_components_recompose() {
        let (f, x) = matmul();
        let mesh = Mesh::new([("B", 2), ("M", 2)]).unwrap();
        let hw = HardwareConfig::tpu_v3_pod(mesh.clone());
        let mut p = Partitioning::new(&f, mesh).unwrap();
        p.tile(&f, x, 0, &"B".into()).unwrap();
        p.propagate(&f);
        let eval = evaluate(&f, &p, &hw).unwrap();
        let b = eval.cost_breakdown(&hw);
        assert_eq!(b.cost, eval.cost(&hw));
        assert_eq!(b.penalty, 1.0);
        assert!((b.compute_s + b.comm_s - eval.sim.runtime_s).abs() < 1e-15);
        assert_eq!(b.comm_bytes, eval.sim.comm_bytes);
        assert_eq!(b.peak_memory_bytes, eval.sim.peak_memory_bytes);
    }

    #[test]
    fn cost_penalises_out_of_memory() {
        let (f, _) = matmul();
        let mesh = Mesh::single("B", 4).unwrap();
        let hw = HardwareConfig::tpu_v3_pod(mesh.clone());
        let p = Partitioning::new(&f, mesh).unwrap();
        let eval = evaluate(&f, &p, &hw).unwrap();
        assert!(eval.cost(&hw) > 0.0);

        let mut tiny = hw.clone();
        tiny.device.hbm_bytes = 1;
        assert!(eval.cost(&tiny) > 10.0 * eval.cost(&hw));
    }
}
