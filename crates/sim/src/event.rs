//! Event-level execution model — the stand-in for real-hardware
//! measurements (see DESIGN.md substitutions).
//!
//! Compared to the analytical [`crate::Simulator`], this model:
//!
//! * charges a fixed dispatch overhead per op (kernel launches),
//! * schedules the program on **two resources** — a compute lane and one
//!   link lane per mesh axis — so compute/communication overlap emerges
//!   from the dependency structure instead of a fixed overlap fraction:
//!   a collective starts when its input is ready and its link is free,
//!   and only stalls compute when a consumer actually needs its result,
//! * perturbs each op's cost with a deterministic per-op jitter standing
//!   in for layout passes, fusion decisions and measurement noise.
//!
//! This mirrors what the compiled-plan runtime executes: `spmd::plan`
//! splits every collective into a `CollStart` hoisted to where its input
//! is ready and a `CollWait` sunk to its first consumer, so the window a
//! collective has to hide under compute is exactly the dependency slack
//! this model schedules. [`measure_overlap`] reports the per-collective
//! hidden time, which `sim::reconcile` checks against the `coll.start` /
//! `coll.wait` span gaps on real device traces.
//!
//! Figures 9 and 10 compare the analytical estimates against this model;
//! the paper compares against TPUv3 hardware.

use std::collections::BTreeMap;

use partir_ir::{Func, IrError, OpId, OpKind, TensorType, ValueId};
use partir_mesh::{Axis, HardwareConfig};

use crate::{collective_time, op_flops, peak_memory_bytes, SimConfig, SimReport};

/// Tunables of the event model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventConfig {
    /// Per-op dispatch overhead, seconds.
    pub op_overhead_s: f64,
    /// Relative amplitude of deterministic per-op jitter (0.05 = ±5%).
    pub jitter: f64,
    /// Extra per-step fixed cost (host sync, infeed), seconds.
    pub step_overhead_s: f64,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            // Per *fused kernel*: backends merge many IR ops per launch,
            // so the effective per-op overhead is sub-microsecond.
            op_overhead_s: 0.3e-6,
            jitter: 0.08,
            step_overhead_s: 30e-6,
        }
    }
}

/// One collective's predicted schedule in the two-resource model.
///
/// `index` counts static collectives in program order — the same order
/// `spmd::plan` assigns rendezvous tags, so entry `i` here describes the
/// collective traced as `coll.start.i` / `coll.wait.i`. For collectives
/// inside loops, times accumulate across iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CollectiveOverlap {
    /// Static collective index == runtime rendezvous tag.
    pub index: u32,
    /// Modeled on-link duration, seconds (summed over loop iterations).
    pub duration_s: f64,
    /// Portion hidden under other work, seconds: duration minus the
    /// stall its consumers (or the program end) actually suffered.
    pub hidden_s: f64,
}

/// Predicted compute/communication overlap for a whole program.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct OverlapPrediction {
    /// Per static collective, in tag order.
    pub collectives: Vec<CollectiveOverlap>,
}

impl OverlapPrediction {
    /// Total modeled communication time, seconds.
    pub fn total_s(&self) -> f64 {
        self.collectives.iter().map(|c| c.duration_s).sum()
    }

    /// Total communication time hidden under compute, seconds.
    pub fn hidden_s(&self) -> f64 {
        self.collectives.iter().map(|c| c.hidden_s).sum()
    }

    /// Hidden fraction of total communication time (0 when the program
    /// does not communicate).
    pub fn hidden_fraction(&self) -> f64 {
        let total = self.total_s();
        if total <= 0.0 {
            0.0
        } else {
            self.hidden_s() / total
        }
    }
}

/// Runs the event-level model over a device-local program; the returned
/// report plays the role of a hardware measurement.
///
/// # Errors
///
/// Fails when collectives reference unknown axes.
pub fn measure(func: &Func, hw: &HardwareConfig, cfg: &EventConfig) -> Result<SimReport, IrError> {
    measure_overlap(func, hw, cfg).map(|(report, _)| report)
}

/// Like [`measure`], but also returns the per-collective overlap the
/// two-resource schedule predicts.
///
/// # Errors
///
/// Fails when collectives reference unknown axes.
pub fn measure_overlap(
    func: &Func,
    hw: &HardwareConfig,
    cfg: &EventConfig,
) -> Result<(SimReport, OverlapPrediction), IrError> {
    let base = SimConfig::default();
    let mut state = MeasureState {
        hw,
        cfg,
        base,
        ready: vec![0.0; func.num_values()],
        compute_free: 0.0,
        link_free: BTreeMap::new(),
        producer: vec![None; func.num_values()],
        colls: Vec::new(),
        static_index: BTreeMap::new(),
        compute: 0.0,
        comm: 0.0,
        bytes: 0.0,
        salt: 0x243f6a8885a308d3,
    };
    state.number_collectives(func, func.body());
    state.walk(func, func.body())?;
    // Collectives whose last issue nobody consumed (program outputs, or
    // dead values): exposed for however long they outlive the compute
    // lane — the program can't finish before they complete.
    let compute_end = state.compute_free;
    for coll in &mut state.colls {
        if let Some(end) = coll.unconsumed_end.take() {
            coll.exposed += (end - compute_end).max(0.0);
        }
    }
    let finish = state.finish_time(func);
    let runtime_s = cfg.step_overhead_s + finish;
    let prediction = OverlapPrediction {
        collectives: state
            .colls
            .iter()
            .map(|c| CollectiveOverlap {
                index: c.index,
                duration_s: c.duration,
                hidden_s: (c.duration - c.exposed).max(0.0),
            })
            .collect(),
    };
    let report = SimReport {
        runtime_s,
        compute_s: state.compute,
        comm_s: state.comm,
        flops: crate::func_flops(func),
        comm_bytes: state.bytes,
        peak_memory_bytes: measured_memory(func),
    };
    Ok((report, prediction))
}

/// The "measured" memory: live-range peak plus a workspace factor for
/// backend temporaries (the analytical estimate deliberately
/// over-estimates relative to this, Appendix A.5.2).
pub fn measured_memory(func: &Func) -> u64 {
    let base = peak_memory_bytes(func);
    // Backends typically reuse buffers better than a pure live-range
    // analysis assumes, but add workspace for convolutions and fusions.
    (base as f64 * 0.92) as u64
}

/// Accumulated schedule state of one static collective.
struct CollState {
    index: u32,
    /// Total on-link time across iterations.
    duration: f64,
    /// Stall time its consumers suffered waiting on it.
    exposed: f64,
    /// End time of the latest issue whose result nobody consumed yet.
    unconsumed_end: Option<f64>,
}

struct MeasureState<'a> {
    hw: &'a HardwareConfig,
    cfg: &'a EventConfig,
    base: SimConfig,
    /// Per-value completion time (flat arena, parameters ready at 0).
    ready: Vec<f64>,
    /// When the compute lane frees up.
    compute_free: f64,
    /// When each per-axis link lane frees up.
    link_free: BTreeMap<Axis, f64>,
    /// Which static collective produced each value (latest issue).
    producer: Vec<Option<usize>>,
    colls: Vec<CollState>,
    /// Static collective index per op, assigned in plan-tag order.
    static_index: BTreeMap<OpId, usize>,
    compute: f64,
    comm: f64,
    bytes: f64,
    salt: u64,
}

impl MeasureState<'_> {
    fn jitter(&mut self) -> f64 {
        // xorshift-style deterministic jitter in [1-j, 1+j].
        self.salt ^= self.salt << 13;
        self.salt ^= self.salt >> 7;
        self.salt ^= self.salt << 17;
        let unit = (self.salt >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.cfg.jitter * (2.0 * unit - 1.0)
    }

    /// Assigns each static collective its program-order index — one pass
    /// per op, recursing into regions once: exactly the order
    /// `spmd::plan` assigns rendezvous tags.
    fn number_collectives(&mut self, func: &Func, body: &[OpId]) {
        for &op_id in body {
            let op = func.op(op_id);
            match &op.kind {
                OpKind::For { .. } => {
                    let region = op.region.as_ref().expect("for has region");
                    self.number_collectives(func, &region.body);
                }
                OpKind::Collective(_) => {
                    let idx = self.colls.len();
                    self.static_index.insert(op_id, idx);
                    self.colls.push(CollState {
                        index: idx as u32,
                        duration: 0.0,
                        exposed: 0.0,
                        unconsumed_end: None,
                    });
                }
                _ => {}
            }
        }
    }

    /// Start time for a consumer whose lane frees at `lane_free`, plus
    /// stall accounting: operands still pending on a collective delay
    /// the start to their completion, and the binding (latest) one is
    /// charged the wait beyond the dependency-free start. Every pending
    /// collective operand is marked consumed.
    fn consume_operands(&mut self, operands: &[ValueId], lane_free: f64) -> f64 {
        let mut dep_free = lane_free;
        let mut binding: Option<(usize, f64)> = None;
        for &v in operands {
            let r = self.ready[v.0 as usize];
            match self.producer[v.0 as usize] {
                Some(ci) if self.colls[ci].unconsumed_end.is_some() => {
                    if binding.is_none_or(|(_, e)| r > e) {
                        binding = Some((ci, r));
                    }
                }
                _ => dep_free = dep_free.max(r),
            }
        }
        let start = binding.map_or(dep_free, |(_, e)| dep_free.max(e));
        if let Some((ci, end)) = binding {
            self.colls[ci].exposed += (end - dep_free).max(0.0);
        }
        for &v in operands {
            if let Some(ci) = self.producer[v.0 as usize].take() {
                self.colls[ci].unconsumed_end = None;
            }
        }
        start
    }

    fn walk(&mut self, func: &Func, body: &[OpId]) -> Result<(), IrError> {
        for &op_id in body {
            let op = func.op(op_id);
            match &op.kind {
                OpKind::For { trip_count } => {
                    let region = op.region.as_ref().expect("for has region");
                    for iter in 0..*trip_count {
                        // Wire carried values: inits on the first
                        // iteration, the previous yield afterwards. The
                        // i32 index is host-side and free.
                        for (i, &p) in region.params[1..].iter().enumerate() {
                            let src = if iter == 0 {
                                op.operands[i]
                            } else {
                                region.results[i]
                            };
                            self.ready[p.0 as usize] = self.ready[src.0 as usize];
                            self.producer[p.0 as usize] = self.producer[src.0 as usize];
                        }
                        self.walk(func, &region.body)?;
                    }
                    for (i, &r) in op.results.iter().enumerate() {
                        let src = region.results[i];
                        self.ready[r.0 as usize] = self.ready[src.0 as usize];
                        self.producer[r.0 as usize] = self.producer[src.0 as usize];
                    }
                }
                OpKind::Collective(c) => {
                    let operand_ty = func.value_type(op.operands[0]);
                    let result_ty = func.value_type(op.results[0]);
                    let (t, by) = collective_time(c, operand_ty, result_ty, self.hw)?;
                    let t = t * self.jitter() + self.cfg.op_overhead_s;
                    // The link lanes: one per mesh axis; a multi-axis
                    // collective holds all its axes' lanes throughout.
                    let lanes_free = c
                        .axes()
                        .iter()
                        .map(|a| self.link_free.get(a).copied().unwrap_or(0.0))
                        .fold(0.0f64, f64::max);
                    let start = self.consume_operands(&op.operands, lanes_free);
                    let end = start + t;
                    for a in c.axes() {
                        self.link_free.insert(a.clone(), end);
                    }
                    self.comm += t;
                    self.bytes += by;
                    self.ready[op.results[0].0 as usize] = end;
                    let ci = self.static_index[&op_id];
                    self.colls[ci].duration += t;
                    self.colls[ci].unconsumed_end = Some(end);
                    self.producer[op.results[0].0 as usize] = Some(ci);
                }
                kind => {
                    let operand_tys: Vec<&TensorType> =
                        op.operands.iter().map(|&v| func.value_type(v)).collect();
                    let result_ty = func.value_type(op.results[0]);
                    let t = self.op_time(kind, &operand_tys, result_ty) * self.jitter()
                        + self.cfg.op_overhead_s;
                    let start = self.consume_operands(&op.operands, self.compute_free);
                    let end = start + t;
                    self.compute_free = end;
                    self.compute += t;
                    for &r in &op.results {
                        self.ready[r.0 as usize] = end;
                    }
                }
            }
        }
        Ok(())
    }

    /// Completion time of the program: its results, plus every lane
    /// draining (a collective still on the wire holds the step open).
    fn finish_time(&self, func: &Func) -> f64 {
        let results = func
            .results()
            .iter()
            .map(|&v| self.ready[v.0 as usize])
            .fold(self.compute_free, f64::max);
        self.link_free.values().copied().fold(results, f64::max)
    }

    fn op_time(&self, kind: &OpKind, operands: &[&TensorType], result: &TensorType) -> f64 {
        let flops = op_flops(kind, operands, result);
        let moved: f64 = operands.iter().map(|t| t.size_bytes() as f64).sum::<f64>()
            + result.size_bytes() as f64;
        let mem_time = moved / (self.hw.device.hbm_bandwidth * self.base.hbm_efficiency);
        match kind {
            OpKind::Dot(_)
            | OpKind::Convolution(_)
            | OpKind::ConvInputGrad { .. }
            | OpKind::ConvFilterGrad { .. } => {
                // Real kernels lose efficiency on small tiles.
                let eff = if flops < 1e7 {
                    0.3
                } else {
                    self.base.matmul_efficiency
                };
                (flops / (self.hw.device.peak_flops_f32 * eff)).max(mem_time)
            }
            OpKind::Constant(_) => 0.0,
            _ => mem_time.max(flops / self.hw.device.peak_flops_f32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use partir_ir::{Collective, FuncBuilder, ReduceOp, TensorType};
    use partir_mesh::Mesh;

    fn all_reduce_b() -> Collective {
        Collective::AllReduce {
            axes: vec!["B".into()],
            reduce: ReduceOp::Sum,
        }
    }

    fn sample_func() -> Func {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([2048, 2048]));
        let w = b.param("w", TensorType::f32([2048, 2048]));
        let y = b.matmul(x, w).unwrap();
        let z = b.tanh(y).unwrap();
        b.build([z]).unwrap()
    }

    #[test]
    fn measurement_close_to_estimate_but_not_equal() {
        let hw = HardwareConfig::tpu_v3_pod(Mesh::single("B", 4).unwrap());
        let f = sample_func();
        let est = Simulator::new(&hw, SimConfig::default())
            .simulate(&f)
            .unwrap();
        let meas = measure(&f, &hw, &EventConfig::default()).unwrap();
        assert_ne!(est.runtime_s, meas.runtime_s);
        // Within a factor of 3 — the simulator is a coarse proxy.
        let ratio = meas.runtime_s / est.runtime_s;
        assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn measurement_is_deterministic() {
        let hw = HardwareConfig::tpu_v3_pod(Mesh::single("B", 4).unwrap());
        let f = sample_func();
        let a = measure(&f, &hw, &EventConfig::default()).unwrap();
        let b = measure(&f, &hw, &EventConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn measured_memory_is_below_estimate() {
        let f = sample_func();
        assert!(measured_memory(&f) < peak_memory_bytes(&f));
    }

    /// A collective whose result is consumed only after independent
    /// compute overlaps; one consumed immediately does not.
    #[test]
    fn overlap_emerges_from_dependency_slack() {
        let mesh = Mesh::single("B", 4).unwrap();
        let hw = HardwareConfig::tpu_v3_pod(mesh.clone());
        // Small reduction, big matmul: the link time fits comfortably
        // under the independent compute.
        let small = TensorType::f32([128, 128]);
        let big = TensorType::f32([2048, 2048]);

        // Slack: reduce `x`, then a long independent matmul on `w`,
        // then consume the reduction.
        let mut b = FuncBuilder::with_mesh("slack", mesh.clone());
        let x = b.param("x", small.clone());
        let w = b.param("w", big.clone());
        let r = b.collective(all_reduce_b(), x).unwrap();
        let m = b.matmul(w, w).unwrap();
        let t = b.tanh(r).unwrap();
        let slack = b.build([t, m]).unwrap();

        // No slack: the reduction's consumer is the very next op.
        let mut b = FuncBuilder::with_mesh("tight", mesh);
        let x = b.param("x", small);
        let w = b.param("w", big);
        let r = b.collective(all_reduce_b(), x).unwrap();
        let t = b.tanh(r).unwrap();
        let m = b.matmul(w, w).unwrap();
        let tight = b.build([t, m]).unwrap();

        let cfg = EventConfig::default();
        let (_, slack_pred) = measure_overlap(&slack, &hw, &cfg).unwrap();
        let (_, tight_pred) = measure_overlap(&tight, &hw, &cfg).unwrap();
        assert_eq!(slack_pred.collectives.len(), 1);
        assert!(
            slack_pred.hidden_fraction() > 0.9,
            "slack should hide the collective: {:?}",
            slack_pred
        );
        assert!(
            tight_pred.hidden_fraction() < 0.1,
            "tight chain cannot hide the collective: {:?}",
            tight_pred
        );
        // Overlap shortens the critical path.
        let (slack_rep, _) = measure_overlap(&slack, &hw, &cfg).unwrap();
        let (tight_rep, _) = measure_overlap(&tight, &hw, &cfg).unwrap();
        assert!(slack_rep.runtime_s < tight_rep.runtime_s);
    }
}
