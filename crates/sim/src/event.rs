//! Event-level execution model — the stand-in for real-hardware
//! measurements (see DESIGN.md substitutions).
//!
//! Compared to the analytical [`crate::Simulator`], this model:
//!
//! * charges a fixed dispatch overhead per op (kernel launches),
//! * overlaps communication with the *following* compute region the way
//!   an asynchronous runtime would (bounded by an overlap window),
//! * perturbs each op's cost with a deterministic per-op jitter standing
//!   in for layout passes, fusion decisions and measurement noise.
//!
//! Figures 9 and 10 compare the analytical estimates against this model;
//! the paper compares against TPUv3 hardware.

use partir_ir::{Func, IrError, OpId, OpKind, TensorType};
use partir_mesh::HardwareConfig;

use crate::{collective_time, op_flops, peak_memory_bytes, SimConfig, SimReport};

/// Tunables of the event model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EventConfig {
    /// Per-op dispatch overhead, seconds.
    pub op_overhead_s: f64,
    /// Fraction of each collective hidden under adjacent compute.
    pub async_overlap: f64,
    /// Relative amplitude of deterministic per-op jitter (0.05 = ±5%).
    pub jitter: f64,
    /// Extra per-step fixed cost (host sync, infeed), seconds.
    pub step_overhead_s: f64,
}

impl Default for EventConfig {
    fn default() -> Self {
        EventConfig {
            // Per *fused kernel*: backends merge many IR ops per launch,
            // so the effective per-op overhead is sub-microsecond.
            op_overhead_s: 0.3e-6,
            async_overlap: 0.35,
            jitter: 0.08,
            step_overhead_s: 30e-6,
        }
    }
}

/// Runs the event-level model over a device-local program; the returned
/// report plays the role of a hardware measurement.
///
/// # Errors
///
/// Fails when collectives reference unknown axes.
pub fn measure(func: &Func, hw: &HardwareConfig, cfg: &EventConfig) -> Result<SimReport, IrError> {
    let base = SimConfig::default();
    let mut state = MeasureState {
        hw,
        cfg,
        base,
        compute: 0.0,
        comm: 0.0,
        bytes: 0.0,
        pending_comm: 0.0,
        salt: 0x243f6a8885a308d3,
    };
    state.walk(func, func.body())?;
    // Whatever communication could not be hidden is paid at the end.
    let comm_exposed = state.pending_comm;
    let runtime_s = cfg.step_overhead_s + state.compute + comm_exposed;
    Ok(SimReport {
        runtime_s,
        compute_s: state.compute,
        comm_s: state.comm,
        flops: crate::func_flops(func),
        comm_bytes: state.bytes,
        peak_memory_bytes: measured_memory(func),
    })
}

/// The "measured" memory: live-range peak plus a workspace factor for
/// backend temporaries (the analytical estimate deliberately
/// over-estimates relative to this, Appendix A.5.2).
pub fn measured_memory(func: &Func) -> u64 {
    let base = peak_memory_bytes(func);
    // Backends typically reuse buffers better than a pure live-range
    // analysis assumes, but add workspace for convolutions and fusions.
    (base as f64 * 0.92) as u64
}

struct MeasureState<'a> {
    hw: &'a HardwareConfig,
    cfg: &'a EventConfig,
    base: SimConfig,
    compute: f64,
    comm: f64,
    bytes: f64,
    /// Communication issued but not yet hidden under compute.
    pending_comm: f64,
    salt: u64,
}

impl MeasureState<'_> {
    fn jitter(&mut self) -> f64 {
        // xorshift-style deterministic jitter in [1-j, 1+j].
        self.salt ^= self.salt << 13;
        self.salt ^= self.salt >> 7;
        self.salt ^= self.salt << 17;
        let unit = (self.salt >> 11) as f64 / (1u64 << 53) as f64;
        1.0 + self.cfg.jitter * (2.0 * unit - 1.0)
    }

    fn walk(&mut self, func: &Func, body: &[OpId]) -> Result<(), IrError> {
        for &op_id in body {
            let op = func.op(op_id);
            match &op.kind {
                OpKind::For { trip_count } => {
                    let region = op.region.as_ref().expect("for has region");
                    for _ in 0..*trip_count {
                        self.walk(func, &region.body)?;
                    }
                }
                OpKind::Collective(c) => {
                    let operand_ty = func.value_type(op.operands[0]);
                    let result_ty = func.value_type(op.results[0]);
                    let (t, by) = collective_time(c, operand_ty, result_ty, self.hw)?;
                    let t = t * self.jitter() + self.cfg.op_overhead_s;
                    self.comm += t;
                    self.bytes += by;
                    self.pending_comm += t;
                }
                kind => {
                    let operand_tys: Vec<&TensorType> =
                        op.operands.iter().map(|&v| func.value_type(v)).collect();
                    let result_ty = func.value_type(op.results[0]);
                    let t = self.op_time(kind, &operand_tys, result_ty) * self.jitter()
                        + self.cfg.op_overhead_s;
                    self.compute += t;
                    // Compute hides part of the pending communication.
                    let hidden = (t * self.cfg.async_overlap).min(self.pending_comm);
                    self.pending_comm -= hidden;
                }
            }
        }
        Ok(())
    }

    fn op_time(&self, kind: &OpKind, operands: &[&TensorType], result: &TensorType) -> f64 {
        let flops = op_flops(kind, operands, result);
        let moved: f64 = operands.iter().map(|t| t.size_bytes() as f64).sum::<f64>()
            + result.size_bytes() as f64;
        let mem_time = moved / (self.hw.device.hbm_bandwidth * self.base.hbm_efficiency);
        match kind {
            OpKind::Dot(_)
            | OpKind::Convolution(_)
            | OpKind::ConvInputGrad { .. }
            | OpKind::ConvFilterGrad { .. } => {
                // Real kernels lose efficiency on small tiles.
                let eff = if flops < 1e7 {
                    0.3
                } else {
                    self.base.matmul_efficiency
                };
                (flops / (self.hw.device.peak_flops_f32 * eff)).max(mem_time)
            }
            OpKind::Constant(_) => 0.0,
            _ => mem_time.max(flops / self.hw.device.peak_flops_f32),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Simulator;
    use partir_ir::{FuncBuilder, TensorType};
    use partir_mesh::Mesh;

    fn sample_func() -> Func {
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([2048, 2048]));
        let w = b.param("w", TensorType::f32([2048, 2048]));
        let y = b.matmul(x, w).unwrap();
        let z = b.tanh(y).unwrap();
        b.build([z]).unwrap()
    }

    #[test]
    fn measurement_close_to_estimate_but_not_equal() {
        let hw = HardwareConfig::tpu_v3_pod(Mesh::single("B", 4).unwrap());
        let f = sample_func();
        let est = Simulator::new(&hw, SimConfig::default())
            .simulate(&f)
            .unwrap();
        let meas = measure(&f, &hw, &EventConfig::default()).unwrap();
        assert_ne!(est.runtime_s, meas.runtime_s);
        // Within a factor of 3 — the simulator is a coarse proxy.
        let ratio = meas.runtime_s / est.runtime_s;
        assert!(ratio > 0.3 && ratio < 3.0, "ratio {ratio}");
    }

    #[test]
    fn measurement_is_deterministic() {
        let hw = HardwareConfig::tpu_v3_pod(Mesh::single("B", 4).unwrap());
        let f = sample_func();
        let a = measure(&f, &hw, &EventConfig::default()).unwrap();
        let b = measure(&f, &hw, &EventConfig::default()).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn measured_memory_is_below_estimate() {
        let f = sample_func();
        assert!(measured_memory(&f) < peak_memory_bytes(&f));
    }
}
