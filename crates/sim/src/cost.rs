//! Analytical runtime model: roofline compute costs plus ring-style
//! collective costs over the mesh topology.

use partir_ir::{Collective, Func, IrError, OpId, OpKind, TensorType};
use partir_mesh::HardwareConfig;

use crate::{func_flops, op_flops, peak_memory_bytes, SimReport};

/// Tunables of the analytical model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Fraction of peak FLOPS achieved by contraction ops (matmul/conv).
    pub matmul_efficiency: f64,
    /// Fraction of peak HBM bandwidth achieved by memory-bound ops.
    pub hbm_efficiency: f64,
    /// Fraction of collective time hidden under compute (the paper's
    /// compute/communication-overlap rewrites, §6.1).
    pub overlap: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            matmul_efficiency: 0.55,
            hbm_efficiency: 0.7,
            overlap: 0.0,
        }
    }
}

/// The analytical simulator (paper Appendix A.5): walks a device-local
/// program once, costing compute with a roofline model and communication
/// with ring-collective formulas over the per-axis links.
#[derive(Debug, Clone)]
pub struct Simulator<'a> {
    hw: &'a HardwareConfig,
    cfg: SimConfig,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for a machine.
    pub fn new(hw: &'a HardwareConfig, cfg: SimConfig) -> Self {
        Simulator { hw, cfg }
    }

    /// Simulates one step of a device-local program.
    ///
    /// # Errors
    ///
    /// Fails when a collective references an axis missing from the mesh
    /// or topology.
    pub fn simulate(&self, func: &Func) -> Result<SimReport, IrError> {
        let (compute_s, comm_s, comm_bytes) = self.walk(func, func.body())?;
        let flops = func_flops(func);
        let runtime_s = compute_s + comm_s * (1.0 - self.cfg.overlap);
        Ok(SimReport {
            runtime_s,
            compute_s,
            comm_s,
            flops,
            comm_bytes,
            peak_memory_bytes: peak_memory_bytes(func),
        })
    }

    fn walk(&self, func: &Func, body: &[OpId]) -> Result<(f64, f64, f64), IrError> {
        let mut compute = 0.0;
        let mut comm = 0.0;
        let mut bytes = 0.0;
        for &op_id in body {
            let op = func.op(op_id);
            match &op.kind {
                OpKind::For { trip_count } => {
                    let region = op.region.as_ref().expect("for has region");
                    let (c, m, by) = self.walk(func, &region.body)?;
                    compute += *trip_count as f64 * c;
                    comm += *trip_count as f64 * m;
                    bytes += *trip_count as f64 * by;
                }
                OpKind::Collective(c) => {
                    let operand_ty = func.value_type(op.operands[0]);
                    let result_ty = func.value_type(op.results[0]);
                    let (t, by) = collective_time(c, operand_ty, result_ty, self.hw)?;
                    comm += t;
                    bytes += by;
                }
                kind => {
                    let operand_tys: Vec<&TensorType> =
                        op.operands.iter().map(|&v| func.value_type(v)).collect();
                    let result_ty = func.value_type(op.results[0]);
                    compute += self.op_time(kind, &operand_tys, result_ty);
                }
            }
        }
        Ok((compute, comm, bytes))
    }

    fn op_time(&self, kind: &OpKind, operands: &[&TensorType], result: &TensorType) -> f64 {
        let flops = op_flops(kind, operands, result);
        let moved_bytes: f64 = operands.iter().map(|t| t.size_bytes() as f64).sum::<f64>()
            + result.size_bytes() as f64;
        let mem_time = moved_bytes / (self.hw.device.hbm_bandwidth * self.cfg.hbm_efficiency);
        match kind {
            OpKind::Dot(_)
            | OpKind::Convolution(_)
            | OpKind::ConvInputGrad { .. }
            | OpKind::ConvFilterGrad { .. } => {
                let flop_time =
                    flops / (self.hw.device.peak_flops_f32 * self.cfg.matmul_efficiency);
                flop_time.max(mem_time)
            }
            OpKind::Constant(_) => 0.0,
            _ => mem_time.max(flops / self.hw.device.peak_flops_f32),
        }
    }
}

/// Ring-style cost of one collective: `(seconds, bytes_on_wire)`.
///
/// Multi-axis collectives execute one axis at a time (sizes grow/shrink
/// per stage), matching the hierarchical implementations used on real
/// meshes.
///
/// # Errors
///
/// Fails when an axis is missing from the mesh or topology.
pub fn collective_time(
    c: &Collective,
    operand: &TensorType,
    result: &TensorType,
    hw: &HardwareConfig,
) -> Result<(f64, f64), IrError> {
    let err = |e: partir_mesh::MeshError| IrError::invalid(e.to_string());
    let mut time = 0.0;
    let mut wire_bytes = 0.0;
    match c {
        Collective::AllSlice { .. } => { /* device-local */ }
        Collective::AllReduce { axes, .. } => {
            let bytes = operand.size_bytes() as f64;
            for axis in axes {
                let k = hw.mesh.axis_size(axis).map_err(err)? as f64;
                let bw = hw.topology.bandwidth(axis).map_err(err)?;
                let lat = hw.topology.latency(axis).map_err(err)?;
                let moved = 2.0 * (k - 1.0) / k * bytes;
                time += moved / bw + 2.0 * (k - 1.0) * lat;
                wire_bytes += moved;
            }
        }
        Collective::AllGather { dim_axes } => {
            // Sizes grow stage by stage; process axes innermost-first.
            let mut bytes = operand.size_bytes() as f64;
            for axes in dim_axes {
                for axis in axes.iter().rev() {
                    let k = hw.mesh.axis_size(axis).map_err(err)? as f64;
                    let bw = hw.topology.bandwidth(axis).map_err(err)?;
                    let lat = hw.topology.latency(axis).map_err(err)?;
                    let out = bytes * k;
                    let moved = (k - 1.0) / k * out;
                    time += moved / bw + (k - 1.0) * lat;
                    wire_bytes += moved;
                    bytes = out;
                }
            }
        }
        Collective::ReduceScatter { dim_axes, .. } => {
            let mut bytes = operand.size_bytes() as f64;
            for axes in dim_axes {
                for axis in axes {
                    let k = hw.mesh.axis_size(axis).map_err(err)? as f64;
                    let bw = hw.topology.bandwidth(axis).map_err(err)?;
                    let lat = hw.topology.latency(axis).map_err(err)?;
                    let moved = (k - 1.0) / k * bytes;
                    time += moved / bw + (k - 1.0) * lat;
                    wire_bytes += moved;
                    bytes /= k;
                }
            }
        }
        Collective::AllToAll { axes, .. } => {
            let bytes = operand.size_bytes() as f64;
            for axis in axes {
                let k = hw.mesh.axis_size(axis).map_err(err)? as f64;
                let bw = hw.topology.bandwidth(axis).map_err(err)?;
                let lat = hw.topology.latency(axis).map_err(err)?;
                let moved = (k - 1.0) / k * bytes;
                time += moved / bw + (k - 1.0) * lat;
                wire_bytes += moved;
            }
        }
    }
    let _ = result;
    Ok((time, wire_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use partir_ir::{FuncBuilder, ReduceOp, TensorType};
    use partir_mesh::Mesh;

    fn hw() -> HardwareConfig {
        HardwareConfig::tpu_v3_pod(Mesh::new([("B", 4), ("M", 2)]).unwrap())
    }

    #[test]
    fn all_reduce_costs_twice_reduce_scatter() {
        let hw = hw();
        let t = TensorType::f32([1024, 1024]);
        let ar = collective_time(
            &Collective::AllReduce {
                axes: vec!["B".into()],
                reduce: ReduceOp::Sum,
            },
            &t,
            &t,
            &hw,
        )
        .unwrap();
        let rs = collective_time(
            &Collective::ReduceScatter {
                dim_axes: vec![vec!["B".into()], vec![]],
                reduce: ReduceOp::Sum,
            },
            &t,
            &TensorType::f32([256, 1024]),
            &hw,
        )
        .unwrap();
        assert!((ar.0 / rs.0 - 2.0).abs() < 0.1, "{} vs {}", ar.0, rs.0);
    }

    #[test]
    fn all_slice_is_free() {
        let hw = hw();
        let t = TensorType::f32([1024]);
        let (time, bytes) = collective_time(
            &Collective::AllSlice {
                dim_axes: vec![vec!["B".into()]],
            },
            &t,
            &TensorType::f32([256]),
            &hw,
        )
        .unwrap();
        assert_eq!(time, 0.0);
        assert_eq!(bytes, 0.0);
    }

    #[test]
    fn sharded_program_is_faster_when_comm_is_cheap() {
        use partir_core::Partitioning;
        let mesh = Mesh::single("B", 4).unwrap();
        let hw = HardwareConfig::tpu_v3_pod(mesh.clone());
        let mut b = FuncBuilder::new("f");
        let x = b.param("x", TensorType::f32([1024, 512]));
        let w = b.param("w", TensorType::f32([512, 512]));
        let y = b.matmul(x, w).unwrap();
        let f = b.build([y]).unwrap();
        let full_report = Simulator::new(&hw, SimConfig::default())
            .simulate(&f)
            .unwrap();
        let mut p = Partitioning::new(&f, mesh).unwrap();
        p.tile(&f, x, 0, &"B".into()).unwrap();
        p.propagate(&f);
        let program = partir_spmd::lower(&f, &p).unwrap();
        let sharded_report = Simulator::new(&hw, SimConfig::default())
            .simulate(program.func())
            .unwrap();
        assert!(sharded_report.runtime_s < full_report.runtime_s / 2.0);
        assert!(sharded_report.flops < full_report.flops / 3.0);
    }

    #[test]
    fn mfu_is_bounded() {
        let report = SimReport {
            runtime_s: 1.0,
            flops: 1e12,
            ..Default::default()
        };
        let mfu = report.mfu(4e12, 4, 2e12);
        assert!((mfu - 50.0).abs() < 1e-9);
    }
}
