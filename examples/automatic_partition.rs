//! Mixing manual and automatic tactics (paper §3 Listing 7, §7.3.1).
//!
//! Partitions the GNS model three ways: fully manual edge sharding (ES),
//! ES plus an automatic search over the model axis (ES+AutoMP), and a
//! fully automatic search over both axes (AllAuto). Prints the simulator
//! estimates the search optimises — the same numbers Table 3 reports.
//!
//! Run with: `cargo run --release -p partir-bench --example automatic_partition`

use partir_mesh::{HardwareConfig, Mesh};
use partir_models::gns::GnsConfig;
use partir_models::schedules::{self, BATCH, MODEL};
use partir_sched::{partir_jit, AutomaticPartition, Schedule};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let model = partir_models::gns::build_train_step(&GnsConfig::paper())?;
    let mesh = Mesh::new([(BATCH, 8), (MODEL, 4)])?;
    let hw = HardwareConfig::tpu_v3_pod(mesh);

    let auto_mp = || AutomaticPartition::new("AutoMP", [MODEL]).with_budget(24);
    let auto_all = || AutomaticPartition::new("AllAuto", [BATCH, MODEL]).with_budget(32);
    let strategies: Vec<(&str, Schedule)> = vec![
        ("ES", Schedule::new([schedules::g_es()])),
        (
            "ES+AutoMP",
            Schedule::new([schedules::g_es(), auto_mp().into()]),
        ),
        ("AllAuto", Schedule::new([auto_all().into()])),
    ];

    println!("GNS on mesh {} — manual vs automatic tactics\n", hw.mesh);
    println!(
        "{:<12} {:>10} {:>12} {:>28}",
        "strategy", "est (ms)", "mem (MiB)", "collectives"
    );
    for (name, schedule) in strategies {
        let start = std::time::Instant::now();
        let jitted = partir_jit(&model.func, &hw, &schedule)?;
        let last = jitted.reports.last().expect("at least one tactic");
        println!(
            "{:<12} {:>10.3} {:>12.2} {:>28}   (search {:?})",
            name,
            last.sim.runtime_s * 1e3,
            last.sim.peak_memory_bytes as f64 / (1024.0 * 1024.0),
            last.stats.to_string(),
            start.elapsed(),
        );
    }
    println!("\nautomatic tactics search with the analytical simulator as cost model");
    Ok(())
}
