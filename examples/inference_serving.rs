//! Partitioning an autoregressive serving loop (the paper's IT32, §7.3).
//!
//! Builds the multi-query inference Transformer with KV caches inside a
//! `for` serving loop, partitions it with the Table 2 schedules and
//! decodes tokens on every simulated device, checking the sharded decode
//! is bit-identical to the single-device decode.
//!
//! Run with: `cargo run --release -p partir-bench --example inference_serving`

use partir_ir::interp::interpret;
use partir_mesh::{HardwareConfig, Mesh};
use partir_models::itransformer::ITransformerConfig;
use partir_models::schedules::{self, BATCH, MODEL};
use partir_sched::partir_jit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = ITransformerConfig::tiny();
    let model = partir_models::itransformer::build_serving(&cfg)?;
    println!(
        "IT{} serving loop: {} steps, batch {}, buffer {}",
        cfg.layers,
        cfg.steps,
        cfg.batch,
        cfg.buffer_len()
    );

    let mesh = Mesh::new([(BATCH, 2), (MODEL, 2)])?;
    let hw = HardwareConfig::tpu_v3_pod(mesh);
    let inputs = partir_models::synthetic_inputs(&model, 2026);
    let reference = interpret(&model.func, &inputs)?;
    println!(
        "single-device decode: {:?}…",
        &reference[0].as_i32()?[..cfg.buffer_len().min(8)]
    );

    for (name, schedule) in schedules::itransformer_table2() {
        let jitted = partir_jit(&model.func, &hw, &schedule)?;
        let stats = jitted.program.stats();
        let spmd = jitted.program.execute_global(&inputs)?;
        let same = spmd[0] == reference[0];
        println!("{name:>9}: {stats}  decode identical across shardings: {same}");
        assert!(same, "sharded decode must match");
    }
    println!("inference serving OK");
    Ok(())
}
