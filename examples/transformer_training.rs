//! Partitioning a full Transformer training step with composed manual
//! tactics — the paper's flagship workflow (§7.3).
//!
//! Builds the T32-structured model (32 layers, 289 parameter tensors,
//! width scaled for CPU), applies the Table 2 schedules, and prints the
//! per-tactic incremental feedback a performance engineer would inspect:
//! collective counts, estimated runtime and peak memory after each
//! tactic, without compiling or profiling anything downstream.
//!
//! Run with: `cargo run --release -p partir-bench --example transformer_training`

use partir_mesh::{HardwareConfig, Mesh};
use partir_models::schedules::{self, BATCH, MODEL};
use partir_models::transformer::TransformerConfig;
use partir_sched::partir_jit;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = TransformerConfig::t32();
    let model = partir_models::transformer::build_train_step(&cfg)?;
    println!(
        "T32 structure: {} layers, {} parameter tensors, {} ops in the training step",
        cfg.layers,
        model.num_param_tensors,
        model.func.num_ops()
    );

    let mesh = Mesh::new([(BATCH, 8), (MODEL, 4)])?;
    let hw = HardwareConfig::tpu_v3_pod(mesh);
    println!("mesh {}\n", hw.mesh);

    for (name, schedule) in schedules::transformer_table2() {
        let jitted = match partir_jit(&model.func, &hw, &schedule) {
            Ok(j) => j,
            Err(e) => {
                println!("{name:>14}: failed to partition: {e}");
                continue;
            }
        };
        println!("schedule {name}:");
        for report in &jitted.reports {
            println!(
                "  + {:<4} actions={:<3} rewrites={:<5} conflicts={} [{}] est {:>8.2} ms  mem {:>6.1} MiB",
                report.tactic,
                report.actions,
                report.rewrites,
                report.conflicts,
                report.stats,
                report.sim.runtime_s * 1e3,
                report.sim.peak_memory_bytes as f64 / (1024.0 * 1024.0),
            );
        }
        let stats = jitted.program.stats();
        println!(
            "  final: {stats}  (partition time {:?})\n",
            jitted.partition_time
        );
    }
    Ok(())
}
