//! Quickstart: the paper's §2.3 walk-through on the two-matmul chain.
//!
//! Builds Listing 1, applies the Listing 6 schedule (BP, MP, Z3) tactic
//! by tactic, and prints after each step what the paper's listings show:
//! the PartIR:Core view, the collectives of the lowered SPMD program and
//! the simulator's estimates. Finishes by executing the program on the
//! simulated mesh and checking it against the single-device reference.
//!
//! Run with: `cargo run -p partir-bench --example quickstart`

use partir_ir::{interp::interpret, Literal, TensorType};
use partir_mesh::{HardwareConfig, Mesh};
use partir_models::mlp::matmul_chain;
use partir_sched::{partir_jit, ManualPartition, Schedule};
use partir_sim::{SimConfig, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Listing 1: f(x, w1, w2) = (x @ w1) @ w2 on a {B:4, M:2} mesh.
    let func = matmul_chain(256, 8, 16, 8);
    let mesh = Mesh::new([("B", 4), ("M", 2)])?;
    let hw = HardwareConfig::tpu_v3_pod(mesh.clone());

    println!("== Unpartitioned module (Listing 2) ==");
    println!("{}", partir_ir::print::print_func(&func));

    // Listing 6: the schedule is a sequence of tactics.
    let schedule = Schedule::new([
        ManualPartition::new("BP", "B").dim("x", 0).into(),
        ManualPartition::new("MP", "M").dim("w1", 1).into(),
        ManualPartition::new("Z3", "B")
            .dim("w1", 0)
            .dim("w2", 1)
            .into(),
    ]);
    let jitted = partir_jit(&func, &hw, &schedule)?;

    println!("== Incremental feedback after every tactic ==");
    for report in &jitted.reports {
        println!(
            "  after {:<4}  collectives [{}]  est. step {:>9.3} µs  peak mem {:>8} B",
            report.tactic,
            report.stats,
            report.sim.runtime_s * 1e6,
            report.sim.peak_memory_bytes,
        );
    }

    println!("\n== PartIR:Core view of the final partitioning (§5) ==");
    println!(
        "{}",
        partir_core::print::print_core(&func, &jitted.partitioning)
    );

    println!("== Device-local SPMD program (Listing 5) ==");
    println!("{}", jitted.program.to_text());

    // Execute on all 8 simulated devices and compare with the reference.
    let inputs = vec![
        Literal::ones(&TensorType::f32([256, 8])),
        Literal::filled(&TensorType::f32([8, 16]), 0.5),
        Literal::filled(&TensorType::f32([16, 8]), 0.25),
    ];
    let reference = interpret(&func, &inputs)?;
    let spmd = jitted.program.execute_global(&inputs)?;
    let diff = reference[0].max_abs_diff(&spmd[0])?;
    println!("max |reference - spmd| = {diff:e}");
    assert!(diff < 1e-3);

    let report = Simulator::new(&hw, SimConfig::default()).simulate(jitted.program.func())?;
    println!(
        "analytical estimate: {:.3} µs compute + {:.3} µs communication",
        report.compute_s * 1e6,
        report.comm_s * 1e6
    );
    println!("quickstart OK");
    Ok(())
}
