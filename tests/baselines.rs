//! Baseline comparisons (the §7.4 story): PartIR's incremental schedules
//! versus the single-tactic ablation (PartIR-st) and the GSPMD-style
//! annotation-propagation baseline, on the conflict-heavy U-Net Z
//! schedules.
//!
//! A reproduction note: in this implementation the residual/backward
//! structure lets propagation *eventually* disambiguate most U-Net sites
//! even when all actions are applied at once, so PartIR-st rarely ends
//! with reported conflicts. It still loses what incrementality buys:
//! under BP+MP+Z3 it emits ~2× the gathers and is ~2× slower in the
//! simulator, and under BP+Z3 it Z-shards fewer tensors (fewer
//! reduce-scatters ⇒ more memory) — the Fig. 7 qualitative ordering.

use partir_gspmd::{gspmd_partition, GspmdOptions, InputSharding};
use partir_ir::interp::interpret;
use partir_mesh::{HardwareConfig, Mesh};
use partir_models::schedules::{self, BATCH, MODEL};
use partir_models::synthetic_inputs;
use partir_models::unet::UNetConfig;
use partir_sched::{partir_jit, partir_jit_single_tactic, Schedule};
use partir_sim::{SimConfig, Simulator};

fn paper_machine() -> HardwareConfig {
    HardwareConfig::tpu_v3_pod(Mesh::new([(BATCH, 8), (MODEL, 2)]).unwrap())
}

fn tiny_machine() -> HardwareConfig {
    HardwareConfig::tpu_v3_pod(Mesh::new([(BATCH, 2), (MODEL, 2)]).unwrap())
}

#[test]
fn single_tactic_is_slower_under_bp_mp_z3() {
    let model = partir_models::unet::build_train_step(&UNetConfig::paper()).unwrap();
    let hw = paper_machine();
    let schedule = Schedule::new([schedules::u_bp(), schedules::u_mp(), schedules::u_z3()]);

    let incremental = partir_jit(&model.func, &hw, &schedule).unwrap();
    let single = partir_jit_single_tactic(&model.func, &hw, &schedule).unwrap();

    let inc = incremental.program.stats();
    let st = single.program.stats();
    assert!(
        st.all_gather as f64 >= 1.5 * inc.all_gather as f64,
        "st gathers {} vs incremental {}",
        st.all_gather,
        inc.all_gather
    );
    let inc_rt = incremental.reports.last().unwrap().sim.runtime_s;
    let st_rt = single.reports[0].sim.runtime_s;
    assert!(
        st_rt > 1.3 * inc_rt,
        "st runtime {st_rt} vs incremental {inc_rt}"
    );
}

#[test]
fn single_tactic_under_shards_z3() {
    // Without BP-first prioritisation, fewer gradients end up
    // reduce-scattered, so the Z3 memory-sharding intent is missed.
    let model = partir_models::unet::build_train_step(&UNetConfig::paper()).unwrap();
    let hw = paper_machine();
    let schedule = Schedule::new([schedules::u_bp(), schedules::u_z3()]);
    let incremental = partir_jit(&model.func, &hw, &schedule).unwrap();
    let single = partir_jit_single_tactic(&model.func, &hw, &schedule).unwrap();
    assert!(
        single.program.stats().reduce_scatter < incremental.program.stats().reduce_scatter,
        "st {} vs incremental {}",
        single.program.stats().reduce_scatter,
        incremental.program.stats().reduce_scatter
    );
    assert!(
        single.reports[0].sim.peak_memory_bytes
            >= incremental.reports.last().unwrap().sim.peak_memory_bytes
    );
}

#[test]
fn single_tactic_remains_correct_at_tiny_scale() {
    let model = partir_models::unet::build_train_step(&UNetConfig::tiny()).unwrap();
    let hw = tiny_machine();
    let schedule = Schedule::new([schedules::u_bp(), schedules::u_mp(), schedules::u_z3()]);
    let incremental = partir_jit(&model.func, &hw, &schedule).unwrap();
    let single = partir_jit_single_tactic(&model.func, &hw, &schedule).unwrap();
    let inputs = synthetic_inputs(&model, 5);
    let reference = interpret(&model.func, &inputs).unwrap();
    for jitted in [&incremental, &single] {
        let out = jitted.program.execute_global(&inputs).unwrap();
        assert!(reference[0].max_abs_diff(&out[0]).unwrap() < 5e-3);
    }
}

/// The GSPMD-- seeding for a BP+MP+Z3-equivalent partition: every
/// annotation at once, conflicts left to the baseline's heuristics.
fn gspmd_annotations(model: &partir_models::BuiltModel, batch_size: usize) -> Vec<InputSharding> {
    let mut annotations = vec![InputSharding::tile("x", 0, BATCH)];
    for &p in model.func.params() {
        let name = model.func.value(p).name.clone().unwrap_or_default();
        let ty = model.func.value_type(p);
        if name.contains("conv1_w")
            || name.contains("attn_wq")
            || name.contains("attn_wk")
            || name.contains("attn_wv")
        {
            let d = if name.contains("conv1_w") { 0 } else { 1 };
            annotations.push(InputSharding::tile(&name, d, MODEL));
        }
        if name.starts_with("params.") || name.starts_with("opt.") {
            if let Some(dim) = (0..ty.rank()).find(|&d| ty.shape.dim(d).is_multiple_of(batch_size))
            {
                annotations.push(InputSharding::tile(&name, dim, BATCH));
            }
        }
    }
    annotations
}

#[test]
fn gspmd_minus_minus_is_noticeably_slower_than_partir() {
    // Fig. 7's headline: without internal annotations the heuristic
    // baseline produces programs that fit but are noticeably slower.
    let model = partir_models::unet::build_train_step(&UNetConfig::paper()).unwrap();
    let hw = paper_machine();
    let schedule = Schedule::new([schedules::u_bp(), schedules::u_mp(), schedules::u_z3()]);
    let partir = partir_jit(&model.func, &hw, &schedule).unwrap();

    let part = gspmd_partition(
        &model.func,
        hw.mesh.clone(),
        &gspmd_annotations(&model, 8),
        &GspmdOptions::default(),
    )
    .unwrap();
    let program = partir_spmd::lower(&model.func, &part)
        .unwrap()
        .fused()
        .unwrap();
    let sim = Simulator::new(&hw, SimConfig::default());
    let partir_rt = sim.simulate(partir.program.func()).unwrap().runtime_s;
    let gspmd_rt = sim.simulate(program.func()).unwrap().runtime_s;
    assert!(
        gspmd_rt > 1.3 * partir_rt,
        "gspmd-- {gspmd_rt} vs partir {partir_rt}"
    );
    assert!(program.stats().all_gather > partir.program.stats().all_gather);
}

#[test]
fn gspmd_partition_is_correct_at_tiny_scale() {
    let model = partir_models::unet::build_train_step(&UNetConfig::tiny()).unwrap();
    let hw = tiny_machine();
    let part = gspmd_partition(
        &model.func,
        hw.mesh.clone(),
        &gspmd_annotations(&model, 2),
        &GspmdOptions::default(),
    )
    .unwrap();
    let program = partir_spmd::lower(&model.func, &part)
        .unwrap()
        .fused()
        .unwrap();
    let inputs = synthetic_inputs(&model, 6);
    let reference = interpret(&model.func, &inputs).unwrap();
    let out = program.execute_global(&inputs).unwrap();
    assert!(reference[0].max_abs_diff(&out[0]).unwrap() < 5e-3);
}

#[test]
fn gspmd_propagation_leaves_no_conflicts() {
    let model = partir_models::unet::build_train_step(&UNetConfig::tiny()).unwrap();
    let hw = tiny_machine();
    let mut part = gspmd_partition(
        &model.func,
        hw.mesh.clone(),
        &gspmd_annotations(&model, 2),
        &GspmdOptions::default(),
    )
    .unwrap();
    let report = part.propagate(&model.func);
    assert!(report.conflicts.is_empty());
}
