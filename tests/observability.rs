//! The observability layer's two hard guarantees, tested end to end:
//!
//! 1. **Inertness** (propcheck): for random zoo models, schedules,
//!    meshes and inputs, running the whole pipeline — `partir_jit`,
//!    `evaluate`, the threaded runtime — under a recording collector
//!    produces exactly the same results as under the no-op collector:
//!    identical `Func` and `Partitioning` fingerprints, identical
//!    evaluation costs (bitwise, not approximately), bit-identical
//!    runtime outputs and traffic stats. Tracing observes; it never
//!    participates.
//!
//! 2. **Golden trace**: a tiny MLP compile — plus a planned runtime
//!    execution on a single-device mesh, so the `device0` track pins
//!    the async-collective `coll.start.N`/`coll.wait.N` spans —
//!    profiled with the fake deterministic clock round-trips
//!    byte-for-byte to a checked-in Chrome trace JSON — stable event
//!    ordering, no wall-clock, no debug/release difference. Regenerate
//!    with
//!    `OBS_UPDATE_GOLDEN=1 cargo test -p partir-bench --test observability`.

use std::collections::BTreeMap;

use partir_core::Partitioning;
use partir_ir::{Fingerprint, Literal};
use partir_mesh::{Axis, HardwareConfig, Mesh};
use partir_models::schedules::{self, BATCH, MODEL};
use partir_models::{
    gns::GnsConfig, itransformer::ITransformerConfig, mlp::MlpConfig,
    transformer::TransformerConfig, BuiltModel,
};
use partir_obs::{with_track, Collector};
use partir_prng::{propcheck, Rng};
use partir_sched::{partir_jit, Schedule};
use partir_spmd::{AxisTraffic, RuntimeConfig};

/// Everything the pipeline computes that tracing could conceivably
/// perturb. Two runs are "identical" iff these compare equal (f64 costs
/// bitwise via `to_bits`, literals element-exact).
#[derive(Debug, PartialEq)]
struct PipelineResult {
    part_fp: Fingerprint,
    func_fp: Fingerprint,
    cost_bits: u64,
    outputs: Vec<Literal>,
    per_axis: BTreeMap<Axis, AxisTraffic>,
}

/// Runs the full pipeline for one (model, schedule, mesh, seed) case
/// under the given collector.
fn run_pipeline(
    collector: &Collector,
    model: &BuiltModel,
    schedule: Option<&Schedule>,
    hw: &HardwareConfig,
    input_seed: u64,
) -> PipelineResult {
    with_track(collector, "main", || {
        let (program, part) = match schedule {
            Some(s) => {
                let jitted = partir_jit(&model.func, hw, s).expect("jit");
                (jitted.program, jitted.partitioning)
            }
            None => {
                let mut part = Partitioning::new(&model.func, hw.mesh.clone()).expect("state");
                let params = model.func.params().to_vec();
                part.tile(&model.func, params[0], 0, &BATCH.into())
                    .expect("tile");
                part.tile(&model.func, params[2], 1, &MODEL.into())
                    .expect("tile");
                part.propagate(&model.func);
                let program = partir_spmd::lower(&model.func, &part)
                    .expect("lower")
                    .fused()
                    .expect("fuse");
                (program, part)
            }
        };
        let eval = partir_sim::evaluate(&model.func, &part, hw).expect("evaluate");
        let inputs = partir_models::synthetic_inputs(model, input_seed);
        let (outputs, stats) = program
            .execute_global_threaded(&inputs, &RuntimeConfig::default())
            .expect("threaded run");
        PipelineResult {
            part_fp: part.fingerprint(),
            func_fp: program.func().fingerprint(),
            cost_bits: eval.cost(hw).to_bits(),
            outputs,
            per_axis: stats.per_axis,
        }
    })
}

/// Builds one random case: a zoo model, an optional schedule from its
/// family's table, and a ladder mesh.
fn random_case(rng: &mut Rng) -> (BuiltModel, Option<Schedule>, HardwareConfig, u64) {
    let batch = [1usize, 2, 4][rng.gen_range(3)];
    let mesh = Mesh::new([(BATCH, batch), (MODEL, 2)]).expect("mesh");
    let hw = HardwareConfig::tpu_v3_pod(mesh);
    let (model, schedule) = match rng.gen_range(4) {
        0 => {
            let m = partir_models::transformer::build_train_step(&TransformerConfig::tiny())
                .expect("transformer");
            let table = schedules::transformer_table2();
            let (_, s) = &table[rng.gen_range(table.len())];
            (m, Some(s.clone()))
        }
        1 => {
            let m = partir_models::itransformer::build_serving(&ITransformerConfig::tiny())
                .expect("itransformer");
            let table = schedules::itransformer_table2();
            let (_, s) = &table[rng.gen_range(table.len())];
            (m, Some(s.clone()))
        }
        2 => {
            let m = partir_models::gns::build_train_step(&GnsConfig::tiny()).expect("gns");
            let table = schedules::gns_table2();
            let (_, s) = &table[rng.gen_range(table.len())];
            (m, Some(s.clone()))
        }
        _ => {
            let m = partir_models::mlp::build_train_step(&MlpConfig::small()).expect("mlp");
            (m, None)
        }
    };
    let input_seed = rng.gen_range(1 << 16) as u64;
    (model, schedule, hw, input_seed)
}

#[test]
fn tracing_is_inert() {
    propcheck::check("obs::tracing_is_inert", 5, |rng| {
        let (model, schedule, hw, input_seed) = random_case(rng);
        let recording = Collector::recording();
        let traced = run_pipeline(&recording, &model, schedule.as_ref(), &hw, input_seed);
        let untraced = run_pipeline(
            &Collector::noop(),
            &model,
            schedule.as_ref(),
            &hw,
            input_seed,
        );
        if recording.num_events() == 0 {
            return Err("recording collector observed nothing".to_string());
        }
        if traced.part_fp != untraced.part_fp {
            return Err("partitioning fingerprints diverged".to_string());
        }
        if traced.func_fp != untraced.func_fp {
            return Err("program fingerprints diverged".to_string());
        }
        if traced.cost_bits != untraced.cost_bits {
            return Err("evaluation costs diverged (bitwise)".to_string());
        }
        if traced.outputs != untraced.outputs {
            return Err("threaded-runtime outputs diverged".to_string());
        }
        if traced.per_axis != untraced.per_axis {
            return Err("traffic stats diverged".to_string());
        }
        Ok(())
    });
}

/// Builds the MLP step with its standard schedule (batch tiled, one
/// layer Megatron-sharded) lowered onto `mesh`.
fn golden_program(model: &BuiltModel, mesh: Mesh) -> partir_spmd::SpmdProgram {
    let mut part = Partitioning::new(&model.func, mesh).expect("state");
    let params = model.func.params().to_vec();
    part.tile(&model.func, params[0], 0, &BATCH.into())
        .expect("tile");
    part.tile(&model.func, params[2], 1, &MODEL.into())
        .expect("tile");
    part.propagate(&model.func);
    partir_spmd::lower(&model.func, &part)
        .expect("lower")
        .fused()
        .expect("fuse")
}

/// Compiles the golden subject under a fake-clock collector: MLP
/// tile+propagate+lower+fuse+evaluate on a 2×2 mesh, then a planned
/// runtime execution on a 1×1 mesh. The runtime section deliberately
/// uses the single-device mesh: the collectives survive lowering (so
/// the `device0` track carries `coll.start.N`/`coll.wait.N` spans and
/// every plan-step span in program order), but their schedules move no
/// messages, so no `rendezvous_wait` span — whose appearance depends on
/// OS scheduling — can ever occur, and the fake clock ticks per track,
/// making the whole trace byte-stable.
fn golden_trace_json() -> String {
    let collector = Collector::with_fake_clock(1_000);
    let model = partir_models::mlp::build_train_step(&MlpConfig::small()).expect("mlp");
    let mesh = Mesh::new([(BATCH, 2), (MODEL, 2)]).expect("mesh");
    let hw = HardwareConfig::tpu_v3_pod(mesh.clone());
    with_track(&collector, "main", || {
        let mut part = Partitioning::new(&model.func, mesh).expect("state");
        let params = model.func.params().to_vec();
        part.tile(&model.func, params[0], 0, &BATCH.into())
            .expect("tile");
        part.tile(&model.func, params[2], 1, &MODEL.into())
            .expect("tile");
        part.propagate(&model.func);
        partir_sim::evaluate(&model.func, &part, &hw).expect("evaluate");
    });
    let single = Mesh::new([(BATCH, 1), (MODEL, 1)]).expect("mesh");
    let program = golden_program(&model, single);
    let inputs = partir_models::synthetic_inputs(&model, 7);
    with_track(&collector, "main", || {
        let plan = program.compile().expect("plan");
        program
            .execute_global_planned(&plan, &inputs, &RuntimeConfig::default())
            .expect("planned run");
    });
    let trace = collector.snapshot();
    trace.check_well_formed().expect("well-formed");
    trace.to_chrome_json()
}

#[test]
fn golden_mlp_profile_round_trips() {
    let got = golden_trace_json();
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../tests/golden/mlp_profile.trace.json"
    );
    if std::env::var_os("OBS_UPDATE_GOLDEN").is_some() {
        std::fs::write(path, &got).expect("update golden");
        return;
    }
    let want = std::fs::read_to_string(path).expect("golden file exists");
    assert_eq!(
        got, want,
        "fake-clock trace diverged from the golden; if the change is \
         intentional, regenerate with OBS_UPDATE_GOLDEN=1"
    );
    // And it is reproducible within one process, byte for byte.
    assert_eq!(got, golden_trace_json());
}
