//! Workspace-level integration tests: the full pipeline from model
//! builder through schedule, propagation, SPMD lowering, fusion,
//! simulation and multi-device execution.

use partir_core::Partitioning;
use partir_ir::interp::interpret;
use partir_mesh::{HardwareConfig, Mesh};
use partir_models::mlp::MlpConfig;
use partir_models::schedules::{BATCH, MODEL};
use partir_models::synthetic_inputs;
use partir_sched::{partir_jit, ManualPartition, Schedule};
use partir_sim::{SimConfig, Simulator};

fn machine() -> HardwareConfig {
    HardwareConfig::tpu_v3_pod(Mesh::new([(BATCH, 4), (MODEL, 2)]).unwrap())
}

#[test]
fn mlp_training_full_pipeline() {
    let model = partir_models::mlp::build_train_step(&MlpConfig::small()).unwrap();
    let hw = machine();
    let schedule = Schedule::new([
        ManualPartition::new("BP", BATCH).dim("x", 0).into(),
        ManualPartition::new("MP", MODEL).dim("params.w0", 1).into(),
        ManualPartition::new("Z3", BATCH)
            .prefix_first_divisible("params.")
            .prefix_first_divisible("opt.")
            .into(),
    ]);
    let jitted = partir_jit(&model.func, &hw, &schedule).unwrap();

    // The lowered program verifies against the mesh.
    partir_ir::verify::verify_func(jitted.program.func(), Some(jitted.program.mesh())).unwrap();

    // Numerics agree with the reference across all 8 devices.
    let inputs = synthetic_inputs(&model, 99);
    let reference = interpret(&model.func, &inputs).unwrap();
    let spmd = jitted.program.execute_global(&inputs).unwrap();
    for (r, s) in reference.iter().zip(&spmd) {
        assert!(r.max_abs_diff(s).unwrap() < 1e-3);
    }

    // Temporal (sequential) semantics agree too.
    let temporal =
        partir_core::temporal::interpret_sharded(&model.func, &jitted.partitioning, &inputs)
            .unwrap();
    for (r, t) in reference.iter().zip(&temporal) {
        assert!(r.max_abs_diff(t).unwrap() < 1e-3);
    }

    // Metadata is monotone in the ways the paper's workflow relies on:
    // Z3 shrinks peak memory versus plain BP.
    let bp_mem = jitted.reports[0].sim.peak_memory_bytes;
    let z3_mem = jitted.reports[2].sim.peak_memory_bytes;
    assert!(z3_mem < bp_mem, "Z3 {z3_mem} !< BP {bp_mem}");
}

#[test]
fn incremental_metadata_counts_are_cumulative() {
    let model = partir_models::mlp::build_train_step(&MlpConfig::small()).unwrap();
    let hw = machine();
    let schedule = Schedule::new([
        ManualPartition::new("BP", BATCH).dim("x", 0).into(),
        ManualPartition::new("Z3", BATCH)
            .prefix_first_divisible("params.")
            .prefix_first_divisible("opt.")
            .into(),
    ]);
    let jitted = partir_jit(&model.func, &hw, &schedule).unwrap();
    // Tactic 2's program extends tactic 1's communication.
    assert!(jitted.reports[1].stats.total() >= jitted.reports[0].stats.total());
    // Final program equals the last report's stats.
    assert_eq!(jitted.program.stats(), jitted.reports[1].stats);
}

#[test]
fn simulator_predicts_partitioning_gains() {
    // The relative-improvement property the paper argues is what the
    // simulator must get right (A.5): batch parallelism on a
    // communication-free program cuts the estimated step time by the axis
    // size.
    let func = partir_models::mlp::matmul_chain(4096, 512, 512, 512);
    let hw = machine();
    let sim = Simulator::new(&hw, SimConfig::default());
    let baseline = {
        let part = Partitioning::new(&func, hw.mesh.clone()).unwrap();
        let program = partir_spmd::lower(&func, &part).unwrap();
        sim.simulate(program.func()).unwrap()
    };
    let schedule = Schedule::new([ManualPartition::new("BP", BATCH).dim("x", 0).into()]);
    let jitted = partir_jit(&func, &hw, &schedule).unwrap();
    assert_eq!(jitted.program.stats().total(), 0);
    let sharded = jitted.reports[0].sim;
    let speedup = baseline.runtime_s / sharded.runtime_s;
    assert!(
        (3.0..=5.0).contains(&speedup),
        "expected ≈4x speedup, got {speedup:.2}x"
    );

    // On a *small* training step, the same tactic is a net loss because
    // the per-gradient all-reduce latency dominates — the kind of
    // trade-off the paper's incremental feedback makes visible early.
    let model = partir_models::mlp::build_train_step(&MlpConfig::small()).unwrap();
    let small_base = {
        let part = Partitioning::new(&model.func, hw.mesh.clone()).unwrap();
        let program = partir_spmd::lower(&model.func, &part).unwrap();
        sim.simulate(program.func()).unwrap()
    };
    let jitted = partir_jit(&model.func, &hw, &schedule).unwrap();
    assert!(jitted.reports[0].sim.comm_s > 0.0);
    assert!(jitted.reports[0].sim.runtime_s > small_base.runtime_s);
}

#[test]
fn schedules_never_undo_earlier_decisions() {
    // Apply BP, record the input sharding, apply two more tactics, and
    // check BP's decision is still present — tactics only ever add.
    let model = partir_models::mlp::build_train_step(&MlpConfig::small()).unwrap();
    let hw = machine();
    let x = model.func.param_by_name("x").unwrap();
    let schedule = Schedule::new([
        ManualPartition::new("BP", BATCH).dim("x", 0).into(),
        ManualPartition::new("MP", MODEL).dim("params.w0", 1).into(),
        ManualPartition::new("Z3", BATCH)
            .prefix_first_divisible("params.")
            .into(),
    ]);
    let jitted = partir_jit(&model.func, &hw, &schedule).unwrap();
    assert_eq!(
        jitted.partitioning.value_ctx(x).entry(&BATCH.into()),
        Some(partir_core::ShardKind::Tile { dim: 0 })
    );
}

#[test]
fn cse_before_partitioning_stays_correct_but_may_change_counts() {
    // partir_ir::passes::cse merges structurally identical values; shared
    // values then share one sharding, which can change the collective
    // pattern (that is why the model builders do not CSE). Correctness is
    // unaffected either way.
    let model = partir_models::mlp::build_train_step(&MlpConfig::small()).unwrap();
    let optimized = partir_ir::passes::cse(&model.func).unwrap();
    assert!(optimized.num_ops() < model.func.num_ops());
    let hw = machine();
    let schedule = Schedule::new([ManualPartition::new("BP", BATCH).dim("x", 0).into()]);
    let original = partir_jit(&model.func, &hw, &schedule).unwrap();
    let cse_jit = partir_jit(&optimized, &hw, &schedule).unwrap();
    let inputs = synthetic_inputs(&model, 77);
    let reference = interpret(&model.func, &inputs).unwrap();
    for jitted in [&original, &cse_jit] {
        let out = jitted.program.execute_global(&inputs).unwrap();
        for (r, o) in reference.iter().zip(&out) {
            assert!(r.max_abs_diff(o).unwrap() < 1e-3);
        }
    }
}
