//! The paper's §8 "model-internal annotations" workflow, end to end:
//! a matrix multiplied by its own transpose creates a propagation
//! conflict that tactic ordering cannot fix; the user `tag`s the
//! intermediate and pins it replicated, and the lowered program gathers
//! it before the multiplication — exactly the paper's final listing.

use partir_ir::{interp::interpret, FuncBuilder, Literal, TensorType};
use partir_mesh::{HardwareConfig, Mesh};
use partir_sched::{partir_jit, DimSpec, ManualPartition, Matcher, Schedule};

fn diag_like() -> partir_ir::Func {
    let mut b = FuncBuilder::new("diag");
    let x = b.param("x", TensorType::f32([8, 8]));
    let t = b.transpose(x, vec![1, 0]).unwrap();
    let y = b.matmul(x, t).unwrap();
    let mut f = b.build([y]).unwrap();
    // The paper's `tag` primitive: name the intermediate so tactics can
    // address it.
    f.set_value_name(t, "tx").unwrap();
    f
}

#[test]
fn untagged_diagonalization_conflicts() {
    let f = diag_like();
    let hw = HardwareConfig::tpu_v3_pod(Mesh::single("M", 2).unwrap());
    let schedule = Schedule::new([ManualPartition::new("MP", "M").dim("x", 0).into()]);
    let jitted = partir_jit(&f, &hw, &schedule).unwrap();
    assert!(
        jitted.reports[0].conflicts > 0,
        "x sharded on dim 0 makes its transpose sharded on dim 1: conflict"
    );
}

#[test]
fn tagged_atomic_resolves_with_an_all_gather() {
    let f = diag_like();
    let hw = HardwareConfig::tpu_v3_pod(Mesh::single("M", 2).unwrap());
    // atomic<%tx, "M"> before the tiling action, via the schedule API.
    let schedule = Schedule::new([ManualPartition::new("MP", "M")
        .rule(Matcher::Exact("tx".into()), DimSpec::Replicated)
        .dim("x", 0)
        .into()]);
    let jitted = partir_jit(&f, &hw, &schedule).unwrap();
    assert_eq!(jitted.reports[0].conflicts, 0);
    // "the final partitioned multiplication requires an all_gather for
    // its second operand" (§8).
    assert_eq!(jitted.program.stats().all_gather, 1);

    // And of course it still computes x·xᵀ.
    let input = Literal::from_f32((0..64).map(|v| v as f32 * 0.1).collect(), [8, 8]).unwrap();
    let reference = interpret(&f, std::slice::from_ref(&input)).unwrap();
    let spmd = jitted.program.execute_global(&[input]).unwrap();
    assert!(reference[0].max_abs_diff(&spmd[0]).unwrap() < 1e-3);
}

#[test]
fn microbatching_composes_with_partitioning() {
    // The Temporal-dialect application (§4): microbatch the batch dim
    // sequentially, then still batch-parallelise the microbatched program
    // over the mesh — gradient accumulation on top of data parallelism.
    let mut b = FuncBuilder::new("loss");
    let x = b.param("x", TensorType::f32([16, 4]));
    let w = b.param("w", TensorType::f32([4, 4]));
    let y = b.matmul(x, w).unwrap();
    let sq = b.mul(y, y).unwrap();
    let s = b.reduce_sum(sq, vec![0, 1]).unwrap();
    let loss = b.binary_scalar(partir_ir::BinaryOp::Div, s, 64.0).unwrap();
    let func = b.build([loss]).unwrap();

    let mb = partir_core::microbatch::microbatch(&func, &["x"], 2).unwrap();
    let hw = HardwareConfig::tpu_v3_pod(Mesh::single("B", 2).unwrap());
    let schedule = Schedule::new([ManualPartition::new("BP", "B").dim("x", 1).into()]);
    // Note: after microbatching, the batch lives in the loop; we shard
    // the *feature* dim instead (dim 1 of x) to keep the example small.
    let jitted = partir_jit(&mb, &hw, &schedule).unwrap();

    let inputs = vec![
        Literal::from_f32((0..64).map(|v| v as f32 * 0.01).collect(), [16, 4]).unwrap(),
        Literal::from_f32((0..16).map(|v| v as f32 * 0.05).collect(), [4, 4]).unwrap(),
    ];
    let reference = interpret(&func, &inputs).unwrap();
    let spmd = jitted.program.execute_global(&inputs).unwrap();
    assert!(reference[0].max_abs_diff(&spmd[0]).unwrap() < 1e-4);
}
